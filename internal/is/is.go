// Package is implements the NPB IS kernel: ranking (sorting) of integer
// keys with a linear-time histogram/counting method. IS is the second
// member of the paper's "unstructured" benchmark group and the one whose
// scalability the paper expected to be poor — the per-thread work is
// small relative to the data movement.
//
// The key sequence is generated from the shared NPB generator (four
// draws summed per key, giving an approximately Gaussian key
// distribution). Each timed iteration perturbs two keys and re-ranks the
// whole array; after the final iteration the keys are permuted into
// sorted order and fully verified (the official full_verify criterion:
// zero out-of-order pairs; the partial-verification rank tables of the C
// original are not embedded — see DESIGN.md on verification tiers).
package is

import (
	"fmt"
	"time"

	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/randdp"
	"npbgo/internal/team"
	"npbgo/internal/trace"
	"npbgo/internal/verify"
)

// maxIterations is the number of ranking passes, fixed at 10 for all
// classes in the original.
const maxIterations = 10

type params struct {
	totalKeysLog2 uint
	maxKeyLog2    uint
}

var classes = map[byte]params{
	'S': {16, 11},
	'W': {20, 16},
	'A': {23, 19},
	'B': {25, 21},
	'C': {27, 23},
}

// Benchmark is a configured IS instance.
type Benchmark struct {
	Class   byte
	numKeys int
	maxKey  int
	threads int
	buckets bool               // bucketed ranking (the C original's USE_BUCKETS path)
	rec     *obs.Recorder      // nil without WithObs
	tr      *trace.Tracer      // nil without WithTrace
	pc      *perfcount.Sampler // nil without WithCounters
	sched   team.Schedule      // loop schedule, Static without WithSchedule

	keys  []int32 // the key array (regenerated at the start of Run)
	buff2 []int32 // key copy used during ranking
	dens  []int32 // global key density / cumulative ranks
	local [][]int32

	// Bucket machinery (allocated only when buckets is set).
	bucketSize  []int32 // per-worker x nbuckets counts
	bucketPtrs  []int32 // per-worker bucket write cursors
	bucketStart []int32

	// Steady-state machinery: the ranking-region bodies are built once
	// by New and reused every pass (a closure literal at the Run call
	// site would allocate per pass), keeping the timed loop free of heap
	// allocation (enforced by internal/allocgate).
	tm           *team.Team
	shift        uint // log2(maxKey) - 10, the bucket selector
	iter         int  // cycling iteration counter for Iter
	straightBody func(id int)
	bucketBody   func(id int)
}

// nbuckets is the bucket count of the C original (2^10).
const nbuckets = 1 << 10

// Option configures optional benchmark behaviour.
type Option func(*Benchmark)

// WithObs attaches a runtime-metrics recorder to the run's team:
// per-worker busy and barrier-wait times, region counts and the
// worker-imbalance ratio of the obs layer.
func WithObs(rec *obs.Recorder) Option { return func(b *Benchmark) { b.rec = rec } }

// WithTrace attaches an execution tracer to the run's team: per-worker
// event timelines (region blocks, barrier and pipeline waits),
// exportable as Chrome/Perfetto JSON — the when-view that complements
// the obs layer's how-much totals.
func WithTrace(tr *trace.Tracer) Option { return func(b *Benchmark) { b.tr = tr } }

// WithCounters attaches a hardware-counter sampler to the run's team:
// per-worker cycles/instructions/cache-miss deltas are charged to pc at
// every parallel region. pc should be sized perfcount.New(threads); nil
// leaves counter sampling disabled.
func WithCounters(pc *perfcount.Sampler) Option { return func(b *Benchmark) { b.pc = pc } }

// WithSchedule selects the team's loop schedule for the histogram
// phases; team.Static (the default) keeps the paper's block
// distribution. The bucketed variant's count/scatter phases always stay
// static (their write cursors are worker-identity-coupled), but the
// skewed bucket-density loop — the load-imbalance hot spot — follows
// the schedule.
func WithSchedule(s team.Schedule) Option { return func(b *Benchmark) { b.sched = s } }

// WithBuckets selects the bucketed ranking algorithm: keys are first
// scattered into 2^10 coarse buckets, then counted bucket-by-bucket,
// trading a pass of data movement for much better cache locality in the
// counting phase — the USE_BUCKETS variant of the C original.
func WithBuckets() Option { return func(b *Benchmark) { b.buckets = true } }

// New configures IS for the given class and thread count.
func New(class byte, threads int, opts ...Option) (*Benchmark, error) {
	p, ok := classes[class]
	if !ok {
		return nil, fmt.Errorf("is: unknown class %q", string(class))
	}
	if threads < 1 {
		return nil, fmt.Errorf("is: threads %d < 1", threads)
	}
	b := &Benchmark{
		Class:   class,
		numKeys: 1 << p.totalKeysLog2,
		maxKey:  1 << p.maxKeyLog2,
		threads: threads,
	}
	for _, o := range opts {
		o(b)
	}
	b.keys = make([]int32, b.numKeys)
	b.buff2 = make([]int32, b.numKeys)
	b.dens = make([]int32, b.maxKey)
	b.local = make([][]int32, threads)
	for i := range b.local {
		b.local[i] = make([]int32, b.maxKey)
	}
	if b.buckets {
		b.bucketSize = make([]int32, threads*nbuckets)
		b.bucketPtrs = make([]int32, threads*nbuckets)
		b.bucketStart = make([]int32, nbuckets+1)
	}
	for 1<<(b.shift+10) < b.maxKey {
		b.shift++
	}
	b.buildBodies()
	return b, nil
}

// buildBodies constructs the two ranking-region bodies once. Each is a
// func(id int) handed straight to Team.Run, with loop shares from the
// team's schedule iterator inside the body, so no closure is created
// per pass. Both histogram phases are integer sums over disjoint
// outputs, so any schedule produces identical ranks.
func (b *Benchmark) buildBodies() {
	//npblint:hot straight histogram ranking, one region per pass
	b.straightBody = func(id int) {
		tm := b.tm
		loc := b.local[id]
		for i := range loc {
			loc[i] = 0
		}
		// Each worker histograms whatever key chunks it claims; the
		// combine below sums the same per-worker counts regardless of
		// which chunks landed where.
		for it := tm.Loop(id, 0, b.numKeys); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				b.buff2[i] = b.keys[i]
				loc[b.buff2[i]]++
			}
		}
		tm.BarrierID(id)
		// Combine local histograms into the global density, each chunk
		// owning a contiguous key sub-range.
		for it := tm.Loop(id, 0, b.maxKey); it.Next(); {
			for key := it.Lo; key < it.Hi; key++ {
				sum := int32(0)
				for w := 0; w < tm.Size(); w++ {
					sum += b.local[w][key]
				}
				b.dens[key] = sum
			}
		}
	}

	//npblint:hot bucketed (USE_BUCKETS) ranking, one region per pass
	b.bucketBody = func(id int) {
		tm := b.tm
		size := tm.Size()
		shift := b.shift
		// Per-worker bucket counts over this worker's key block. The
		// count and scatter phases must stay on the static Block split:
		// the per-(worker,bucket) write cursors computed between them
		// assume each worker scatters exactly the keys it counted.
		lo, hi := team.Block(0, b.numKeys, size, id)
		cnt := b.bucketSize[id*nbuckets : (id+1)*nbuckets]
		for i := range cnt {
			cnt[i] = 0
		}
		for i := lo; i < hi; i++ {
			cnt[b.keys[i]>>shift]++
		}
		tm.BarrierID(id)
		// Worker 0 computes global bucket boundaries and per-worker
		// write cursors (serial; nbuckets is tiny).
		if id == 0 {
			pos := int32(0)
			for bk := 0; bk < nbuckets; bk++ {
				b.bucketStart[bk] = pos
				for w := 0; w < size; w++ {
					b.bucketPtrs[w*nbuckets+bk] = pos
					pos += b.bucketSize[w*nbuckets+bk]
				}
			}
			b.bucketStart[nbuckets] = pos
		}
		tm.BarrierID(id)
		// Scatter this worker's keys into buff2, bucket-ordered.
		ptr := b.bucketPtrs[id*nbuckets : (id+1)*nbuckets]
		for i := lo; i < hi; i++ {
			k := b.keys[i]
			bk := k >> shift
			b.buff2[ptr[bk]] = k
			ptr[bk]++
		}
		tm.BarrierID(id)
		// Count keys bucket-by-bucket: each chunk owns a contiguous
		// range of buckets, hence a contiguous, disjoint slice of the
		// density array — no combining needed. This is the skewed loop
		// (the Gaussian key distribution loads the middle buckets), so
		// it runs under the team's schedule.
		for it := tm.Loop(id, 0, nbuckets); it.Next(); {
			blo, bhi := it.Lo, it.Hi
			if blo >= bhi {
				continue
			}
			kmin := blo << shift
			kmax := bhi << shift
			if kmax > b.maxKey {
				kmax = b.maxKey
			}
			for key := kmin; key < kmax; key++ {
				b.dens[key] = 0
			}
			for i := b.bucketStart[blo]; i < b.bucketStart[bhi]; i++ {
				b.dens[b.buff2[i]]++
			}
		}
	}
}

// NumKeys returns the number of keys ranked per iteration.
func (b *Benchmark) NumKeys() int { return b.numKeys }

// MaxKey returns the exclusive key upper bound.
func (b *Benchmark) MaxKey() int { return b.maxKey }

// createSeq regenerates the key array, as create_seq in the C original:
// each key is the sum of four generator draws scaled by maxKey/4.
func (b *Benchmark) createSeq() {
	seed := 314159265.0
	k := float64(b.maxKey / 4)
	for i := range b.keys {
		x := randdp.Randlc(&seed, randdp.A)
		x += randdp.Randlc(&seed, randdp.A)
		x += randdp.Randlc(&seed, randdp.A)
		x += randdp.Randlc(&seed, randdp.A)
		b.keys[i] = int32(k * x)
	}
}

// rank dispatches one ranking pass to the straight or bucketed
// algorithm.
func (b *Benchmark) rank(tm *team.Team, iteration int) {
	if b.buckets {
		b.rankBuckets(tm, iteration)
		return
	}
	b.rankStraight(tm, iteration)
}

// rankBuckets is the USE_BUCKETS ranking pass: scatter keys into 2^10
// coarse buckets (so the counting pass walks one small, cache-resident
// key sub-range at a time), then count and prefix-sum per bucket.
func (b *Benchmark) rankBuckets(tm *team.Team, iteration int) {
	b.keys[iteration] = int32(iteration)
	b.keys[iteration+maxIterations] = int32(b.maxKey - iteration)

	b.tm = tm
	tm.Run(b.bucketBody)

	// Serial prefix sum, as in the straight variant.
	for i := 0; i < b.maxKey-1; i++ {
		b.dens[i+1] += b.dens[i]
	}
}

// rankStraight performs one ranking pass: perturb two keys (so each
// iteration does distinct work), histogram all keys, and prefix-sum the
// histogram into cumulative ranks, split over the team.
func (b *Benchmark) rankStraight(tm *team.Team, iteration int) {
	b.keys[iteration] = int32(iteration)
	b.keys[iteration+maxIterations] = int32(b.maxKey - iteration)

	b.tm = tm
	tm.Run(b.straightBody)

	// Serial prefix sum (O(maxKey); the C original is serial here too).
	for i := 0; i < b.maxKey-1; i++ {
		b.dens[i+1] += b.dens[i]
	}
}

// Iter runs one timed ranking pass on tm, whose Size must equal the
// thread count the Benchmark was built with, cycling the perturbation
// index 1..maxIterations as Run's timed loop does. Iter is the
// steady-state hook the allocation gate measures: after the first call
// it performs no heap allocation.
func (b *Benchmark) Iter(tm *team.Team) {
	b.iter++
	if b.iter > maxIterations {
		b.iter = 1
	}
	b.rank(tm, b.iter)
}

// fullVerify permutes the keys into sorted order using the final
// cumulative ranks and counts out-of-order pairs, as full_verify.
func (b *Benchmark) fullVerify() int {
	// dens currently holds cumulative counts; walking keys backwards
	// through --dens[key] yields a stable sort placement.
	for i := 0; i < b.numKeys; i++ {
		b.buff2[i] = b.keys[i]
	}
	for i := b.numKeys - 1; i >= 0; i-- {
		k := b.buff2[i]
		b.dens[k]--
		b.keys[b.dens[k]] = k
	}
	bad := 0
	for i := 1; i < b.numKeys; i++ {
		if b.keys[i-1] > b.keys[i] {
			bad++
		}
	}
	return bad
}

// Result reports one IS run.
type Result struct {
	Elapsed   time.Duration
	Mops      float64
	OutOfSeq  int // out-of-order pairs after the final permutation
	KeysMoved int
	Verify    *verify.Report
}

// Run executes the benchmark: key generation (untimed), one untimed
// ranking pass, maxIterations timed passes, then full verification.
func (b *Benchmark) Run() Result {
	tm := team.New(b.threads, team.WithRecorder(b.rec), team.WithTracer(b.tr), team.WithCounters(b.pc), team.WithSchedule(b.sched))
	defer tm.Close()

	b.createSeq()
	b.rank(tm, 1) // untimed warm pass, as in the original

	b.iter = 0
	start := time.Now()
	for it := 1; it <= maxIterations; it++ {
		b.Iter(tm)
	}
	elapsed := time.Since(start)

	bad := b.fullVerify()

	var res Result
	res.Elapsed = elapsed
	res.OutOfSeq = bad
	res.KeysMoved = b.numKeys * maxIterations
	if s := elapsed.Seconds(); s > 0 {
		res.Mops = float64(res.KeysMoved) * 1e-6 / s
	}
	rep := &verify.Report{Tier: verify.TierOfficial}
	rep.Add("out-of-order pairs", float64(bad), 0)
	res.Verify = rep
	return res
}
