package is

import (
	"sort"
	"testing"
	"testing/quick"

	"npbgo/internal/team"
)

func TestClassSFullVerify(t *testing.T) {
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	res := b.Run()
	if res.OutOfSeq != 0 {
		t.Fatalf("%d out-of-order pairs after sort", res.OutOfSeq)
	}
	if !res.Verify.Passed() {
		t.Fatalf("verification failed:\n%s", res.Verify)
	}
}

func TestParallelFullVerify(t *testing.T) {
	for _, n := range []int{2, 4} {
		b, err := New('S', n)
		if err != nil {
			t.Fatal(err)
		}
		if res := b.Run(); res.OutOfSeq != 0 {
			t.Fatalf("threads=%d: %d out-of-order pairs", n, res.OutOfSeq)
		}
	}
}

func TestSortIsPermutation(t *testing.T) {
	b, _ := New('S', 1)
	b.createSeq()
	before := make([]int32, len(b.keys))
	copy(before, b.keys)

	tm := team.New(1)
	defer tm.Close()
	b.rank(tm, 1)
	// rank(1) perturbs two positions; capture the perturbed input.
	perturbed := make([]int32, len(b.keys))
	copy(perturbed, b.keys)

	b.fullVerify()

	// The output must be exactly the multiset of the perturbed input.
	wantHist := map[int32]int{}
	for _, k := range perturbed {
		wantHist[k]++
	}
	for _, k := range b.keys {
		wantHist[k]--
	}
	for k, c := range wantHist {
		if c != 0 {
			t.Fatalf("key %d count off by %d — not a permutation", k, c)
		}
	}
	_ = before
}

func TestKeysWithinRange(t *testing.T) {
	b, _ := New('S', 1)
	b.createSeq()
	for i, k := range b.keys {
		if k < 0 || int(k) >= b.maxKey {
			t.Fatalf("key[%d]=%d outside [0,%d)", i, k, b.maxKey)
		}
	}
}

func TestKeyDistributionCentered(t *testing.T) {
	// Keys are sums of four uniforms scaled by maxKey/4: mean maxKey/2.
	b, _ := New('S', 1)
	b.createSeq()
	sum := 0.0
	for _, k := range b.keys {
		sum += float64(k)
	}
	mean := sum / float64(len(b.keys))
	mid := float64(b.maxKey) / 2
	if mean < 0.95*mid || mean > 1.05*mid {
		t.Fatalf("key mean %v far from %v", mean, mid)
	}
}

func TestRanksMatchStdlibSortProperty(t *testing.T) {
	// Property: our histogram ranking sorts any random key set exactly
	// like sort.Slice.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		b := &Benchmark{
			Class:   'S',
			numKeys: len(raw),
			maxKey:  1 << 11,
			threads: 1,
		}
		b.keys = make([]int32, len(raw))
		b.buff2 = make([]int32, len(raw))
		b.dens = make([]int32, b.maxKey)
		b.local = [][]int32{make([]int32, b.maxKey)}
		want := make([]int32, len(raw))
		for i, r := range raw {
			b.keys[i] = int32(int(r) % b.maxKey)
			want[i] = b.keys[i]
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		tm := team.New(1)
		defer tm.Close()
		// Histogram + prefix without the per-iteration perturbation.
		loc := b.local[0]
		for i := range loc {
			loc[i] = 0
		}
		for i := range b.keys {
			loc[b.keys[i]]++
		}
		copy(b.dens, loc)
		for i := 0; i < b.maxKey-1; i++ {
			b.dens[i+1] += b.dens[i]
		}
		b.fullVerify()
		for i := range want {
			if b.keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownClassRejected(t *testing.T) {
	if _, err := New('X', 1); err == nil {
		t.Fatal("class X accepted")
	}
	if _, err := New('S', 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestClassSizes(t *testing.T) {
	b, _ := New('A', 1)
	if b.NumKeys() != 1<<23 || b.MaxKey() != 1<<19 {
		t.Fatalf("class A sizes wrong: %d keys, %d max", b.NumKeys(), b.MaxKey())
	}
}

// TestRankShiftInvariant: each iteration writes iteration into position
// `iteration` and maxKey-iteration into position iteration+10, so the
// cumulative rank of a probe key must move deterministically between
// iterations — the invariant behind the C original's partial
// verification, checked here without its rank tables.
func TestRankShiftInvariant(t *testing.T) {
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	b.createSeq()

	rankOf := func(key int32) int32 { return b.dens[key] }

	b.rank(tm, 1)
	probe := int32(b.maxKey / 2)
	r1 := rankOf(probe)
	b.rank(tm, 2)
	r2 := rankOf(probe)
	// Between iteration 1 and 2 the two perturbed cells change from
	// (1, maxKey-1) to (2, maxKey-2): both below/above the mid probe as
	// before, so the probe's cumulative rank moves by at most 2.
	if d := r2 - r1; d < -2 || d > 2 {
		t.Fatalf("probe rank moved by %d between iterations", d)
	}
	// A probe below the small inserted keys must see its rank change by
	// exactly 0 when keys just move within the region above it.
	lo := rankOf(0)
	b.rank(tm, 3)
	if rankOf(0) != lo {
		t.Fatalf("rank of key 0 changed: %d -> %d", lo, rankOf(0))
	}
}

func TestAllKeysEqualSorts(t *testing.T) {
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	for i := range b.keys {
		b.keys[i] = 7
	}
	b.rank(tm, 1)
	if bad := b.fullVerify(); bad != 0 {
		t.Fatalf("%d out-of-order pairs on near-constant input", bad)
	}
}

func TestBucketedMatchesStraightRanks(t *testing.T) {
	for _, threads := range []int{1, 3} {
		a, _ := New('S', threads)
		c, _ := New('S', threads, WithBuckets())
		tm := team.New(threads)
		a.createSeq()
		c.createSeq()
		for it := 1; it <= 3; it++ {
			a.rank(tm, it)
			c.rank(tm, it)
		}
		tm.Close()
		for k := range a.dens {
			if a.dens[k] != c.dens[k] {
				t.Fatalf("threads=%d rank of key %d differs: %d vs %d", threads, k, a.dens[k], c.dens[k])
			}
		}
	}
}

func TestBucketedFullRunVerifies(t *testing.T) {
	for _, threads := range []int{1, 4} {
		b, err := New('S', threads, WithBuckets())
		if err != nil {
			t.Fatal(err)
		}
		if res := b.Run(); res.OutOfSeq != 0 {
			t.Fatalf("threads=%d: %d out-of-order pairs (bucketed)", threads, res.OutOfSeq)
		}
	}
}
