// Package ops implements the five basic CFD operations of the paper's
// §3, used there to compare Fortran→Java translation options and to form
// a performance baseline for the full benchmarks (Table 1):
//
//  1. loading/storing array elements (Assignment, run for 10 iterations
//     in the paper's table);
//  2. filtering an array with a first-order star stencil (as in the BT,
//     SP and LU flux computations);
//  3. the same with a second-order star stencil;
//  4. multiplication of a 3-D array of 5x5 matrices by a 3-D array of
//     5-D vectors (a routine CFD operation — it is the inner kernel of
//     BT's block solves);
//  5. a reduction sum over a 4-D array.
//
// Every operation exists in a linearized-array form (the translation
// option the paper adopted) and, for the layout study, in a
// dimension-preserving nested-slice form, plus a multithreaded form that
// splits the outermost grid dimension over a team.
package ops

import (
	"npbgo/internal/grid"
	"npbgo/internal/team"
)

// DefaultDim is the grid used throughout the paper's Table 1:
// 81 x 81 x 100 points.
var DefaultDim = grid.Dim3{N1: 81, N2: 81, N3: 100}

// Workload owns the preallocated fields the operations run on, so timed
// sections never allocate.
type Workload struct {
	D grid.Dim3

	// Scalar fields for assignment and stencils.
	A, B grid.Vec

	// Block fields for the 5x5 matrix-vector product: M is a 3-D array
	// of 5x5 matrices (Dim5 {5,5,n1,n2,n3}), V and W are 3-D arrays of
	// 5-vectors (Dim4 {5,n1,n2,n3}).
	DM   grid.Dim5
	DV   grid.Dim4
	M    grid.Vec
	V, W grid.Vec

	// 4-D field for the reduction sum (Dim4 {5,n1,n2,n3}).
	R grid.Vec

	// Nested variants of the fields for the layout study.
	AN, BN grid.Nested3
	MN     grid.Nested5
	VN, WN grid.Nested4
	RN     grid.Nested4
}

// NewWorkload allocates a workload on grid d and fills the inputs with a
// deterministic, non-trivial pattern.
func NewWorkload(d grid.Dim3) *Workload {
	w := &Workload{
		D:  d,
		A:  grid.Alloc3(d),
		B:  grid.Alloc3(d),
		DM: grid.Dim5{N1: 5, N2: 5, N3: d.N1, N4: d.N2, N5: d.N3},
		DV: grid.Dim4{N1: 5, N2: d.N1, N3: d.N2, N4: d.N3},
		AN: grid.AllocNested3(d),
		BN: grid.AllocNested3(d),
	}
	w.M = grid.Alloc5(w.DM)
	w.V = grid.Alloc4(w.DV)
	w.W = grid.Alloc4(w.DV)
	w.R = grid.Alloc4(w.DV)
	w.MN = grid.AllocNested5(w.DM)
	w.VN = grid.AllocNested4(w.DV)
	w.WN = grid.AllocNested4(w.DV)
	w.RN = grid.AllocNested4(w.DV)

	for i := range w.B {
		w.B[i] = 1.0 + float64(i%17)*0.0625
	}
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				w.BN[i3][i2][i1] = w.B[d.At(i1, i2, i3)]
			}
		}
	}
	for i := range w.M {
		w.M[i] = 0.5 + float64(i%23)*0.03125
	}
	for i := range w.V {
		w.V[i] = 1.0 + float64(i%13)*0.0625
	}
	for i := range w.R {
		w.R[i] = float64(i%31) * 0.03125
	}
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				for c := 0; c < 5; c++ {
					w.VN[i3][i2][i1][c] = w.V[w.DV.At(c, i1, i2, i3)]
					w.RN[i3][i2][i1][c] = w.R[w.DV.At(c, i1, i2, i3)]
					for r := 0; r < 5; r++ {
						w.MN[i3][i2][i1][c][r] = w.M[w.DM.At(r, c, i1, i2, i3)]
					}
				}
			}
		}
	}
	return w
}

// Stencil coefficients: a star stencil with the classic NPB dissipation
// flavour. cen is the centre weight, adj the +-1 weight, adj2 the +-2
// weight (second-order only).
const (
	cen  = 1.0 - 6.0*0.1
	adj  = 0.1
	adj2 = 0.025
	cen2 = 1.0 - 6.0*adj - 6.0*adj2
)

// Assignment copies B into A element-wise (the load/store baseline).
func (w *Workload) Assignment() {
	copyLoop(w.A, w.B)
}

// copyLoop is an explicit element loop rather than copy() so that the Go
// code performs the same per-element load/store work the translated
// Java/Fortran assignment loops perform.
func copyLoop(dst, src grid.Vec) {
	for i := 0; i < len(src); i++ {
		dst[i] = src[i]
	}
}

// AssignmentNested is Assignment on the dimension-preserving layout.
func (w *Workload) AssignmentNested() {
	d := w.D
	for i3 := 0; i3 < d.N3; i3++ {
		p2, q2 := w.AN[i3], w.BN[i3]
		for i2 := 0; i2 < d.N2; i2++ {
			p1, q1 := p2[i2], q2[i2]
			for i1 := 0; i1 < d.N1; i1++ {
				p1[i1] = q1[i1]
			}
		}
	}
}

// AssignmentParallel is Assignment with planes split over tm.
func (w *Workload) AssignmentParallel(tm *team.Team) {
	d := w.D
	plane := d.N1 * d.N2
	tm.ForBlock(0, d.N3, func(blo, bhi int) {
		copyLoop(w.A[blo*plane:bhi*plane], w.B[blo*plane:bhi*plane])
	})
}

// FirstOrder applies the first-order star stencil to B, writing A on the
// interior points (a 7-point kernel as in the BT/SP/LU dissipation
// terms).
func (w *Workload) FirstOrder() {
	w.firstOrderRange(1, w.D.N3-1)
}

func (w *Workload) firstOrderRange(k0, k1 int) {
	d := w.D
	n1, n2 := d.N1, d.N2
	s1, s2, s3 := 1, n1, n1*n2
	a, b := w.A, w.B
	for i3 := k0; i3 < k1; i3++ {
		for i2 := 1; i2 < n2-1; i2++ {
			base := d.At(1, i2, i3)
			for i1 := 1; i1 < n1-1; i1++ {
				c := base + i1 - 1
				a[c] = cen*b[c] +
					adj*(b[c-s1]+b[c+s1]+b[c-s2]+b[c+s2]+b[c-s3]+b[c+s3])
			}
		}
	}
}

// FirstOrderNested is FirstOrder on the nested layout.
func (w *Workload) FirstOrderNested() {
	d := w.D
	a, b := w.AN, w.BN
	for i3 := 1; i3 < d.N3-1; i3++ {
		for i2 := 1; i2 < d.N2-1; i2++ {
			for i1 := 1; i1 < d.N1-1; i1++ {
				a[i3][i2][i1] = cen*b[i3][i2][i1] +
					adj*(b[i3][i2][i1-1]+b[i3][i2][i1+1]+
						b[i3][i2-1][i1]+b[i3][i2+1][i1]+
						b[i3-1][i2][i1]+b[i3+1][i2][i1])
			}
		}
	}
}

// FirstOrderParallel splits the outer planes of FirstOrder over tm.
func (w *Workload) FirstOrderParallel(tm *team.Team) {
	tm.ForBlock(1, w.D.N3-1, func(blo, bhi int) {
		w.firstOrderRange(blo, bhi)
	})
}

// SecondOrder applies the second-order star stencil (13-point kernel,
// +-2 in every direction, as in the fourth-difference dissipation of the
// pseudo-applications).
func (w *Workload) SecondOrder() {
	w.secondOrderRange(2, w.D.N3-2)
}

func (w *Workload) secondOrderRange(k0, k1 int) {
	d := w.D
	n1, n2 := d.N1, d.N2
	s1, s2, s3 := 1, n1, n1*n2
	a, b := w.A, w.B
	for i3 := k0; i3 < k1; i3++ {
		for i2 := 2; i2 < n2-2; i2++ {
			base := d.At(2, i2, i3)
			for i1 := 2; i1 < n1-2; i1++ {
				c := base + i1 - 2
				a[c] = cen2*b[c] +
					adj*(b[c-s1]+b[c+s1]+b[c-s2]+b[c+s2]+b[c-s3]+b[c+s3]) +
					adj2*(b[c-2*s1]+b[c+2*s1]+b[c-2*s2]+b[c+2*s2]+b[c-2*s3]+b[c+2*s3])
			}
		}
	}
}

// SecondOrderNested is SecondOrder on the nested layout.
func (w *Workload) SecondOrderNested() {
	d := w.D
	a, b := w.AN, w.BN
	for i3 := 2; i3 < d.N3-2; i3++ {
		for i2 := 2; i2 < d.N2-2; i2++ {
			for i1 := 2; i1 < d.N1-2; i1++ {
				a[i3][i2][i1] = cen2*b[i3][i2][i1] +
					adj*(b[i3][i2][i1-1]+b[i3][i2][i1+1]+
						b[i3][i2-1][i1]+b[i3][i2+1][i1]+
						b[i3-1][i2][i1]+b[i3+1][i2][i1]) +
					adj2*(b[i3][i2][i1-2]+b[i3][i2][i1+2]+
						b[i3][i2-2][i1]+b[i3][i2+2][i1]+
						b[i3-2][i2][i1]+b[i3+2][i2][i1])
			}
		}
	}
}

// SecondOrderParallel splits the outer planes of SecondOrder over tm.
func (w *Workload) SecondOrderParallel(tm *team.Team) {
	tm.ForBlock(2, w.D.N3-2, func(blo, bhi int) {
		w.secondOrderRange(blo, bhi)
	})
}

// MatVec computes W = M*V at every grid point: a 5x5 matrix times a
// 5-vector per cell.
func (w *Workload) MatVec() {
	w.matVecRange(0, w.D.N3)
}

func (w *Workload) matVecRange(k0, k1 int) {
	d := w.D
	for i3 := k0; i3 < k1; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				mo := w.DM.At(0, 0, i1, i2, i3)
				vo := w.DV.At(0, i1, i2, i3)
				m := w.M[mo : mo+25]
				v := w.V[vo : vo+5]
				out := w.W[vo : vo+5]
				// Column-major 5x5: element (r,c) at m[r+5c].
				for r := 0; r < 5; r++ {
					out[r] = m[r]*v[0] + m[r+5]*v[1] + m[r+10]*v[2] +
						m[r+15]*v[3] + m[r+20]*v[4]
				}
			}
		}
	}
}

// MatVecNested is MatVec on the dimension-preserving layout: every
// block and vector access walks the slice-of-slices chain.
func (w *Workload) MatVecNested() {
	d := w.D
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				m := w.MN[i3][i2][i1]
				v := w.VN[i3][i2][i1]
				out := w.WN[i3][i2][i1]
				for r := 0; r < 5; r++ {
					out[r] = m[0][r]*v[0] + m[1][r]*v[1] + m[2][r]*v[2] +
						m[3][r]*v[3] + m[4][r]*v[4]
				}
			}
		}
	}
}

// MatVecParallel splits the outer planes of MatVec over tm.
func (w *Workload) MatVecParallel(tm *team.Team) {
	tm.ForBlock(0, w.D.N3, func(blo, bhi int) {
		w.matVecRange(blo, bhi)
	})
}

// ReduceSum computes the sum of all elements of the 4-D field R.
func (w *Workload) ReduceSum() float64 {
	return sumRange(w.R, 0, len(w.R))
}

func sumRange(r grid.Vec, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += r[i]
	}
	return s
}

// ReduceSumNested is ReduceSum on the dimension-preserving layout.
func (w *Workload) ReduceSumNested() float64 {
	d := w.D
	s := 0.0
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				row := w.RN[i3][i2][i1]
				for c := 0; c < 5; c++ {
					s += row[c]
				}
			}
		}
	}
	return s
}

// ReduceSumParallel computes ReduceSum with partial sums per worker
// combined in deterministic worker order.
func (w *Workload) ReduceSumParallel(tm *team.Team) float64 {
	return tm.ReduceSum(0, len(w.R), func(blo, bhi int) float64 {
		return sumRange(w.R, blo, bhi)
	})
}

// Flop counts for one invocation of each operation, derived from the
// kernel formulas. They replace the paper's perfex instruction counters
// as the normalization for rate (Mflop/s) reporting: the paper's
// Java/Fortran analysis leaned on the ratio of executed instructions,
// which portable Go cannot read, so the analytic operation counts are
// used instead (documented substitution in DESIGN.md).

// FlopsFirstOrder returns the floating-point operations of one
// FirstOrder invocation: 7 adds + 2 multiplies per interior point.
func (w *Workload) FlopsFirstOrder() int64 {
	d := w.D
	interior := int64(d.N1-2) * int64(d.N2-2) * int64(d.N3-2)
	return interior * 9
}

// FlopsSecondOrder returns the flops of one SecondOrder invocation:
// 13 adds + 3 multiplies per interior point.
func (w *Workload) FlopsSecondOrder() int64 {
	d := w.D
	interior := int64(d.N1-4) * int64(d.N2-4) * int64(d.N3-4)
	return interior * 16
}

// FlopsMatVec returns the flops of one MatVec invocation: 5 rows x
// (5 multiplies + 4 adds) per grid point.
func (w *Workload) FlopsMatVec() int64 {
	d := w.D
	return int64(d.Len()) * 45
}

// FlopsReduceSum returns the flops of one ReduceSum invocation.
func (w *Workload) FlopsReduceSum() int64 { return int64(len(w.R)) }
