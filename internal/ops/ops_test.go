package ops

import (
	"math"
	"testing"

	"npbgo/internal/grid"
	"npbgo/internal/team"
)

// smallDim keeps unit tests fast; correctness is size-independent.
var smallDim = grid.Dim3{N1: 9, N2: 8, N3: 10}

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-13*scale
}

func TestAssignmentCopies(t *testing.T) {
	w := NewWorkload(smallDim)
	w.Assignment()
	for i := range w.B {
		if w.A[i] != w.B[i] {
			t.Fatalf("A[%d]=%v != B[%d]=%v", i, w.A[i], i, w.B[i])
		}
	}
}

func TestNestedMatchesLinear(t *testing.T) {
	w := NewWorkload(smallDim)
	d := w.D

	w.Assignment()
	w.AssignmentNested()
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				if w.A[d.At(i1, i2, i3)] != w.AN[i3][i2][i1] {
					t.Fatalf("assignment mismatch at (%d,%d,%d)", i1, i2, i3)
				}
			}
		}
	}

	w.FirstOrder()
	w.FirstOrderNested()
	for i3 := 1; i3 < d.N3-1; i3++ {
		for i2 := 1; i2 < d.N2-1; i2++ {
			for i1 := 1; i1 < d.N1-1; i1++ {
				lin, nst := w.A[d.At(i1, i2, i3)], w.AN[i3][i2][i1]
				if !almostEqual(lin, nst) {
					t.Fatalf("first-order mismatch at (%d,%d,%d): %v vs %v", i1, i2, i3, lin, nst)
				}
			}
		}
	}

	w.SecondOrder()
	w.SecondOrderNested()
	for i3 := 2; i3 < d.N3-2; i3++ {
		for i2 := 2; i2 < d.N2-2; i2++ {
			for i1 := 2; i1 < d.N1-2; i1++ {
				lin, nst := w.A[d.At(i1, i2, i3)], w.AN[i3][i2][i1]
				if !almostEqual(lin, nst) {
					t.Fatalf("second-order mismatch at (%d,%d,%d): %v vs %v", i1, i2, i3, lin, nst)
				}
			}
		}
	}
}

func TestFirstOrderConstantFieldInvariant(t *testing.T) {
	// The stencil weights sum to 1, so a constant field must map to the
	// same constant on interior points.
	w := NewWorkload(smallDim)
	for i := range w.B {
		w.B[i] = 3.5
	}
	w.FirstOrder()
	d := w.D
	for i3 := 1; i3 < d.N3-1; i3++ {
		for i2 := 1; i2 < d.N2-1; i2++ {
			for i1 := 1; i1 < d.N1-1; i1++ {
				if got := w.A[d.At(i1, i2, i3)]; !almostEqual(got, 3.5) {
					t.Fatalf("constant field changed to %v at (%d,%d,%d)", got, i1, i2, i3)
				}
			}
		}
	}
}

func TestSecondOrderConstantFieldInvariant(t *testing.T) {
	w := NewWorkload(smallDim)
	for i := range w.B {
		w.B[i] = -2.0
	}
	w.SecondOrder()
	d := w.D
	for i3 := 2; i3 < d.N3-2; i3++ {
		for i2 := 2; i2 < d.N2-2; i2++ {
			for i1 := 2; i1 < d.N1-2; i1++ {
				if got := w.A[d.At(i1, i2, i3)]; !almostEqual(got, -2.0) {
					t.Fatalf("constant field changed to %v", got)
				}
			}
		}
	}
}

func TestFirstOrderHandComputed(t *testing.T) {
	w := NewWorkload(smallDim)
	d := w.D
	w.FirstOrder()
	i1, i2, i3 := 3, 4, 5
	b := func(a, bb, c int) float64 { return w.B[d.At(a, bb, c)] }
	want := cen*b(i1, i2, i3) +
		adj*(b(i1-1, i2, i3)+b(i1+1, i2, i3)+b(i1, i2-1, i3)+b(i1, i2+1, i3)+b(i1, i2, i3-1)+b(i1, i2, i3+1))
	if got := w.A[d.At(i1, i2, i3)]; !almostEqual(got, want) {
		t.Fatalf("stencil at interior point = %v, want %v", got, want)
	}
}

func TestMatVecHandComputed(t *testing.T) {
	w := NewWorkload(smallDim)
	w.MatVec()
	i1, i2, i3 := 2, 3, 4
	mo := w.DM.At(0, 0, i1, i2, i3)
	vo := w.DV.At(0, i1, i2, i3)
	for r := 0; r < 5; r++ {
		want := 0.0
		for c := 0; c < 5; c++ {
			want += w.M[mo+r+5*c] * w.V[vo+c]
		}
		if got := w.W[vo+r]; !almostEqual(got, want) {
			t.Fatalf("row %d: %v, want %v", r, got, want)
		}
	}
}

func TestMatVecIdentityMatrix(t *testing.T) {
	w := NewWorkload(smallDim)
	for i := range w.M {
		w.M[i] = 0
	}
	d := w.D
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				for r := 0; r < 5; r++ {
					w.M[w.DM.At(r, r, i1, i2, i3)] = 1
				}
			}
		}
	}
	w.MatVec()
	for i := range w.V {
		if w.W[i] != w.V[i] {
			t.Fatalf("identity matvec changed element %d: %v -> %v", i, w.V[i], w.W[i])
		}
	}
}

func TestReduceSumMatchesNaive(t *testing.T) {
	w := NewWorkload(smallDim)
	want := 0.0
	for _, v := range w.R {
		want += v
	}
	if got := w.ReduceSum(); got != want {
		t.Fatalf("ReduceSum = %v, want %v", got, want)
	}
}

func TestParallelVariantsMatchSerial(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		tm := team.New(n)

		ws := NewWorkload(smallDim)
		wp := NewWorkload(smallDim)

		ws.Assignment()
		wp.AssignmentParallel(tm)
		compare(t, "assignment", ws.A, wp.A)

		ws.FirstOrder()
		wp.FirstOrderParallel(tm)
		compare(t, "first-order", ws.A, wp.A)

		ws.SecondOrder()
		wp.SecondOrderParallel(tm)
		compare(t, "second-order", ws.A, wp.A)

		ws.MatVec()
		wp.MatVecParallel(tm)
		compare(t, "matvec", ws.W, wp.W)

		s := ws.ReduceSum()
		p := wp.ReduceSumParallel(tm)
		if math.Abs(s-p) > 1e-9*math.Abs(s) {
			t.Fatalf("threads=%d reduce: %v vs %v", n, s, p)
		}
		tm.Close()
	}
}

func compare(t *testing.T, name string, a, b grid.Vec) {
	t.Helper()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func TestDefaultDimMatchesPaper(t *testing.T) {
	if DefaultDim.N1 != 81 || DefaultDim.N2 != 81 || DefaultDim.N3 != 100 {
		t.Fatalf("DefaultDim = %+v, want 81x81x100", DefaultDim)
	}
}

func TestMatVecNestedMatchesLinear(t *testing.T) {
	w := NewWorkload(smallDim)
	w.MatVec()
	w.MatVecNested()
	d := w.D
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				for r := 0; r < 5; r++ {
					lin := w.W[w.DV.At(r, i1, i2, i3)]
					nst := w.WN[i3][i2][i1][r]
					if lin != nst {
						t.Fatalf("matvec nested mismatch at (%d,%d,%d,%d): %v vs %v", r, i1, i2, i3, lin, nst)
					}
				}
			}
		}
	}
}

func TestReduceSumNestedMatchesLinear(t *testing.T) {
	w := NewWorkload(smallDim)
	lin := w.ReduceSum()
	nst := w.ReduceSumNested()
	if math.Abs(lin-nst) > 1e-9*math.Abs(lin) {
		t.Fatalf("reduce nested %v vs linear %v", nst, lin)
	}
}

func TestFlopCountsPositiveAndScale(t *testing.T) {
	small := NewWorkload(grid.Dim3{N1: 9, N2: 9, N3: 9})
	big := NewWorkload(grid.Dim3{N1: 17, N2: 17, N3: 17})
	if small.FlopsFirstOrder() <= 0 || small.FlopsSecondOrder() <= 0 ||
		small.FlopsMatVec() <= 0 || small.FlopsReduceSum() <= 0 {
		t.Fatal("flop counts must be positive")
	}
	if big.FlopsMatVec() <= small.FlopsMatVec()*4 {
		t.Fatal("flop counts must scale with the grid")
	}
	if small.FlopsMatVec() != int64(9*9*9*45) {
		t.Fatalf("matvec flops = %d", small.FlopsMatVec())
	}
}
