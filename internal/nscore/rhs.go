package nscore

import (
	"math"

	"npbgo/internal/team"
)

// ComputeRHS evaluates the right-hand side of the discretized
// Navier-Stokes system into rhs: forcing plus convective and viscous
// flux differences in the three coordinate directions plus fourth-order
// artificial dissipation, finally scaled by dt — a literal translation
// of BT's compute_rhs, with the plane loops split over the team. The
// region bodies are prebuilt by NewField (see buildBodies), so repeated
// calls from the timed ADI loop perform no heap allocation.
func (f *Field) ComputeRHS(c *Consts, tm *team.Team) {
	f.stC, f.stTm = c, tm
	tm.Run(f.primBody)
	tm.Run(f.forceBody)
	tm.Run(f.xiBody)
	tm.Run(f.etaBody)
	tm.Run(f.zetaBody)
	tm.Run(f.zDissBody)
	tm.Run(f.scaleBody)
}

// buildBodies constructs the parallel-region bodies of ComputeRHS and
// Add once. Each is a func(id int) handed straight to Team.Run; chunk
// bounds come from the team's loop iterator (honoring the configured
// schedule) and the operands from the stC/stTm staging fields, so the
// callers create no closures.
func (f *Field) buildBodies() {
	n := f.N

	//npblint:hot primitive quantities at every point
	f.primBody = func(id int) {
		c := f.stC
		for it := f.stTm.Loop(id, 0, n); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						off := f.UAt(0, i, j, k)
						s := f.SAt(i, j, k)
						rhoInv := 1.0 / f.U[off]
						f.RhoI[s] = rhoInv
						f.Us[s] = f.U[off+1] * rhoInv
						f.Vs[s] = f.U[off+2] * rhoInv
						f.Ws[s] = f.U[off+3] * rhoInv
						f.Square[s] = 0.5 * (f.U[off+1]*f.U[off+1] +
							f.U[off+2]*f.U[off+2] + f.U[off+3]*f.U[off+3]) * rhoInv
						f.Qs[s] = f.Square[s] * rhoInv
						if f.Speed != nil {
							f.Speed[s] = math.Sqrt(c.C1c2 * rhoInv * (f.U[off+4] - f.Square[s]))
						}
					}
				}
			}
		}
	}

	//npblint:hot rhs starts as the forcing term
	f.forceBody = func(id int) {
		for it := f.stTm.Loop(id, 0, len(f.Rhs)); it.Next(); {
			copy(f.Rhs[it.Lo:it.Hi], f.Forcing[it.Lo:it.Hi])
		}
	}

	//npblint:hot xi-direction fluxes and dissipation, k planes chunked
	f.xiBody = func(id int) {
		c := f.stC
		for it := f.stTm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						s := f.SAt(i, j, k)
						sp := f.SAt(i+1, j, k)
						sm := f.SAt(i-1, j, k)
						uc := f.UAt(0, i, j, k)
						up := f.UAt(0, i+1, j, k)
						um := f.UAt(0, i-1, j, k)
						r := f.FAt(0, i, j, k)
						uijk := f.Us[s]
						up1 := f.Us[sp]
						um1 := f.Us[sm]

						f.Rhs[r+0] += c.Dx1tx1*(f.U[up]-2.0*f.U[uc]+f.U[um]) -
							c.Tx2*(f.U[up+1]-f.U[um+1])
						f.Rhs[r+1] += c.Dx2tx1*(f.U[up+1]-2.0*f.U[uc+1]+f.U[um+1]) +
							c.Xxcon2*c.Con43*(up1-2.0*uijk+um1) -
							c.Tx2*(f.U[up+1]*up1-f.U[um+1]*um1+
								(f.U[up+4]-f.Square[sp]-f.U[um+4]+f.Square[sm])*c.C2)
						f.Rhs[r+2] += c.Dx3tx1*(f.U[up+2]-2.0*f.U[uc+2]+f.U[um+2]) +
							c.Xxcon2*(f.Vs[sp]-2.0*f.Vs[s]+f.Vs[sm]) -
							c.Tx2*(f.U[up+2]*up1-f.U[um+2]*um1)
						f.Rhs[r+3] += c.Dx4tx1*(f.U[up+3]-2.0*f.U[uc+3]+f.U[um+3]) +
							c.Xxcon2*(f.Ws[sp]-2.0*f.Ws[s]+f.Ws[sm]) -
							c.Tx2*(f.U[up+3]*up1-f.U[um+3]*um1)
						f.Rhs[r+4] += c.Dx5tx1*(f.U[up+4]-2.0*f.U[uc+4]+f.U[um+4]) +
							c.Xxcon3*(f.Qs[sp]-2.0*f.Qs[s]+f.Qs[sm]) +
							c.Xxcon4*(up1*up1-2.0*uijk*uijk+um1*um1) +
							c.Xxcon5*(f.U[up+4]*f.RhoI[sp]-2.0*f.U[uc+4]*f.RhoI[s]+f.U[um+4]*f.RhoI[sm]) -
							c.Tx2*((c.C1*f.U[up+4]-c.C2*f.Square[sp])*up1-
								(c.C1*f.U[um+4]-c.C2*f.Square[sm])*um1)
					}
				}
				// xi-direction fourth-order dissipation for this plane.
				for j := 1; j < n-1; j++ {
					f.dissipU(c, 0, j, k)
				}
			}
		}
	}

	//npblint:hot eta-direction fluxes and dissipation, k planes chunked
	f.etaBody = func(id int) {
		c := f.stC
		for it := f.stTm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						s := f.SAt(i, j, k)
						sp := f.SAt(i, j+1, k)
						sm := f.SAt(i, j-1, k)
						uc := f.UAt(0, i, j, k)
						up := f.UAt(0, i, j+1, k)
						um := f.UAt(0, i, j-1, k)
						r := f.FAt(0, i, j, k)
						vijk := f.Vs[s]
						vp1 := f.Vs[sp]
						vm1 := f.Vs[sm]

						f.Rhs[r+0] += c.Dy1ty1*(f.U[up]-2.0*f.U[uc]+f.U[um]) -
							c.Ty2*(f.U[up+2]-f.U[um+2])
						f.Rhs[r+1] += c.Dy2ty1*(f.U[up+1]-2.0*f.U[uc+1]+f.U[um+1]) +
							c.Yycon2*(f.Us[sp]-2.0*f.Us[s]+f.Us[sm]) -
							c.Ty2*(f.U[up+1]*vp1-f.U[um+1]*vm1)
						f.Rhs[r+2] += c.Dy3ty1*(f.U[up+2]-2.0*f.U[uc+2]+f.U[um+2]) +
							c.Yycon2*c.Con43*(vp1-2.0*vijk+vm1) -
							c.Ty2*(f.U[up+2]*vp1-f.U[um+2]*vm1+
								(f.U[up+4]-f.Square[sp]-f.U[um+4]+f.Square[sm])*c.C2)
						f.Rhs[r+3] += c.Dy4ty1*(f.U[up+3]-2.0*f.U[uc+3]+f.U[um+3]) +
							c.Yycon2*(f.Ws[sp]-2.0*f.Ws[s]+f.Ws[sm]) -
							c.Ty2*(f.U[up+3]*vp1-f.U[um+3]*vm1)
						f.Rhs[r+4] += c.Dy5ty1*(f.U[up+4]-2.0*f.U[uc+4]+f.U[um+4]) +
							c.Yycon3*(f.Qs[sp]-2.0*f.Qs[s]+f.Qs[sm]) +
							c.Yycon4*(vp1*vp1-2.0*vijk*vijk+vm1*vm1) +
							c.Yycon5*(f.U[up+4]*f.RhoI[sp]-2.0*f.U[uc+4]*f.RhoI[s]+f.U[um+4]*f.RhoI[sm]) -
							c.Ty2*((c.C1*f.U[up+4]-c.C2*f.Square[sp])*vp1-
								(c.C1*f.U[um+4]-c.C2*f.Square[sm])*vm1)
					}
				}
				for i := 1; i < n-1; i++ {
					f.dissipU(c, 1, i, k)
				}
			}
		}
	}

	//npblint:hot zeta-direction fluxes, k planes chunked
	f.zetaBody = func(id int) {
		c := f.stC
		for it := f.stTm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						s := f.SAt(i, j, k)
						sp := f.SAt(i, j, k+1)
						sm := f.SAt(i, j, k-1)
						uc := f.UAt(0, i, j, k)
						up := f.UAt(0, i, j, k+1)
						um := f.UAt(0, i, j, k-1)
						r := f.FAt(0, i, j, k)
						wijk := f.Ws[s]
						wp1 := f.Ws[sp]
						wm1 := f.Ws[sm]

						f.Rhs[r+0] += c.Dz1tz1*(f.U[up]-2.0*f.U[uc]+f.U[um]) -
							c.Tz2*(f.U[up+3]-f.U[um+3])
						f.Rhs[r+1] += c.Dz2tz1*(f.U[up+1]-2.0*f.U[uc+1]+f.U[um+1]) +
							c.Zzcon2*(f.Us[sp]-2.0*f.Us[s]+f.Us[sm]) -
							c.Tz2*(f.U[up+1]*wp1-f.U[um+1]*wm1)
						f.Rhs[r+2] += c.Dz3tz1*(f.U[up+2]-2.0*f.U[uc+2]+f.U[um+2]) +
							c.Zzcon2*(f.Vs[sp]-2.0*f.Vs[s]+f.Vs[sm]) -
							c.Tz2*(f.U[up+2]*wp1-f.U[um+2]*wm1)
						f.Rhs[r+3] += c.Dz4tz1*(f.U[up+3]-2.0*f.U[uc+3]+f.U[um+3]) +
							c.Zzcon2*c.Con43*(wp1-2.0*wijk+wm1) -
							c.Tz2*(f.U[up+3]*wp1-f.U[um+3]*wm1+
								(f.U[up+4]-f.Square[sp]-f.U[um+4]+f.Square[sm])*c.C2)
						f.Rhs[r+4] += c.Dz5tz1*(f.U[up+4]-2.0*f.U[uc+4]+f.U[um+4]) +
							c.Zzcon3*(f.Qs[sp]-2.0*f.Qs[s]+f.Qs[sm]) +
							c.Zzcon4*(wp1*wp1-2.0*wijk*wijk+wm1*wm1) +
							c.Zzcon5*(f.U[up+4]*f.RhoI[sp]-2.0*f.U[uc+4]*f.RhoI[s]+f.U[um+4]*f.RhoI[sm]) -
							c.Tz2*((c.C1*f.U[up+4]-c.C2*f.Square[sp])*wp1-
								(c.C1*f.U[um+4]-c.C2*f.Square[sm])*wm1)
					}
				}
			}
		}
	}

	//npblint:hot zeta dissipation must see the whole k extent, so it is
	// split over j instead
	f.zDissBody = func(id int) {
		c := f.stC
		for it := f.stTm.Loop(id, 1, n-1); it.Next(); {
			for j := it.Lo; j < it.Hi; j++ {
				for i := 1; i < n-1; i++ {
					f.dissipU(c, 2, i, j)
				}
			}
		}
	}

	//npblint:hot scale by the time step
	f.scaleBody = func(id int) {
		c := f.stC
		for it := f.stTm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						r := f.FAt(0, i, j, k)
						for m := 0; m < 5; m++ {
							f.Rhs[r+m] *= c.Dt
						}
					}
				}
			}
		}
	}

	//npblint:hot flow-variable update u += rhs on the interior
	f.addBody = func(id int) {
		for it := f.stTm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						uo := f.UAt(0, i, j, k)
						for m := 0; m < 5; m++ {
							f.U[uo+m] += f.Rhs[uo+m]
						}
					}
				}
			}
		}
	}
}

// dissipU subtracts the boundary-adjusted fourth-difference dissipation
// of u from rhs along one grid line of direction dir (0 = xi line at
// (j,k)=(a,bb), 1 = eta line at (i,k)=(a,bb), 2 = zeta line at
// (i,j)=(a,bb)). Callers already run inside a parallel region.
func (f *Field) dissipU(c *Consts, dir, a, bb int) {
	n := f.N
	Dssp := c.Dssp
	uAt := func(l, m int) float64 {
		switch dir {
		case 0:
			return f.U[f.UAt(m, l, a, bb)]
		case 1:
			return f.U[f.UAt(m, a, l, bb)]
		default:
			return f.U[f.UAt(m, a, bb, l)]
		}
	}
	rAt := func(l, m int) int {
		switch dir {
		case 0:
			return f.FAt(m, l, a, bb)
		case 1:
			return f.FAt(m, a, l, bb)
		default:
			return f.FAt(m, a, bb, l)
		}
	}
	for m := 0; m < 5; m++ {
		l := 1
		f.Rhs[rAt(l, m)] -= Dssp * (5.0*uAt(l, m) - 4.0*uAt(l+1, m) + uAt(l+2, m))
		l = 2
		f.Rhs[rAt(l, m)] -= Dssp * (-4.0*uAt(l-1, m) + 6.0*uAt(l, m) - 4.0*uAt(l+1, m) + uAt(l+2, m))
		for l = 3; l <= n-4; l++ {
			f.Rhs[rAt(l, m)] -= Dssp * (uAt(l-2, m) - 4.0*uAt(l-1, m) + 6.0*uAt(l, m) - 4.0*uAt(l+1, m) + uAt(l+2, m))
		}
		l = n - 3
		f.Rhs[rAt(l, m)] -= Dssp * (uAt(l-2, m) - 4.0*uAt(l-1, m) + 6.0*uAt(l, m) - 4.0*uAt(l+1, m))
		l = n - 2
		f.Rhs[rAt(l, m)] -= Dssp * (uAt(l-2, m) - 4.0*uAt(l-1, m) + 5.0*uAt(l, m))
	}
}
