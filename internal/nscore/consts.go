package nscore

// ce is the exact-solution coefficient table shared by BT, SP and LU
// (set_constants in the Fortran sources): dtemp(m) is a cubic polynomial
// in each of xi, eta, zeta with these coefficients.
var ce = [5][13]float64{
	{2.0, 0.0, 0.0, 4.0, 5.0, 3.0, 0.5, 0.02, 0.01, 0.03, 0.5, 0.4, 0.3},
	{1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 0.01, 0.03, 0.02, 0.4, 0.3, 0.5},
	{2.0, 2.0, 0.0, 0.0, 0.0, 2.0, 3.0, 0.04, 0.03, 0.05, 0.3, 0.5, 0.4},
	{2.0, 2.0, 0.0, 0.0, 0.0, 2.0, 3.0, 0.03, 0.05, 0.04, 0.2, 0.1, 0.3},
	{5.0, 4.0, 3.0, 2.0, 0.1, 0.4, 0.3, 0.05, 0.04, 0.03, 0.1, 0.3, 0.2},
}

// Consts carries every derived constant of set_constants. They are
// fields (not package globals) so multiple benchmark instances can
// coexist.
type Consts struct {
	C1, C2, C3, C4, C5      float64
	Dnxm1, Dnym1, Dnzm1     float64
	C1c2, C1c5, C3c4, C1345 float64
	Conz1                   float64
	Tx1, Tx2, Tx3           float64
	Ty1, Ty2, Ty3           float64
	Tz1, Tz2, Tz3           float64
	Dx1, Dx2, Dx3, Dx4, Dx5 float64
	Dy1, Dy2, Dy3, Dy4, Dy5 float64
	Dz1, Dz2, Dz3, Dz4, Dz5 float64
	Dssp, Dt                float64
	Xxcon1, Xxcon2, Xxcon3  float64
	Xxcon4, Xxcon5          float64
	Yycon1, Yycon2, Yycon3  float64
	Yycon4, Yycon5          float64
	Zzcon1, Zzcon2, Zzcon3  float64
	Zzcon4, Zzcon5          float64
	Dx1tx1, Dx2tx1, Dx3tx1  float64
	Dx4tx1, Dx5tx1          float64
	Dy1ty1, Dy2ty1, Dy3ty1  float64
	Dy4ty1, Dy5ty1          float64
	Dz1tz1, Dz2tz1, Dz3tz1  float64
	Dz4tz1, Dz5tz1          float64
	Con43, Con16, C2iv      float64
}

// SetConstants mirrors the Fortran set_constants for an n^3 grid with
// time step dt.
func SetConstants(n int, dt float64) Consts {
	var c Consts
	c.C1, c.C2, c.C3, c.C4, c.C5 = 1.4, 0.4, 0.1, 1.0, 1.4
	c.Dnxm1 = 1.0 / float64(n-1)
	c.Dnym1 = 1.0 / float64(n-1)
	c.Dnzm1 = 1.0 / float64(n-1)
	c.C1c2 = c.C1 * c.C2
	c.C1c5 = c.C1 * c.C5
	c.C3c4 = c.C3 * c.C4
	c.C1345 = c.C1c5 * c.C3c4
	c.Conz1 = 1.0 - c.C1c5
	c.Tx1 = 1.0 / (c.Dnxm1 * c.Dnxm1)
	c.Tx2 = 1.0 / (2.0 * c.Dnxm1)
	c.Tx3 = 1.0 / c.Dnxm1
	c.Ty1 = 1.0 / (c.Dnym1 * c.Dnym1)
	c.Ty2 = 1.0 / (2.0 * c.Dnym1)
	c.Ty3 = 1.0 / c.Dnym1
	c.Tz1 = 1.0 / (c.Dnzm1 * c.Dnzm1)
	c.Tz2 = 1.0 / (2.0 * c.Dnzm1)
	c.Tz3 = 1.0 / c.Dnzm1
	c.Dx1, c.Dx2, c.Dx3, c.Dx4, c.Dx5 = 0.75, 0.75, 0.75, 0.75, 0.75
	c.Dy1, c.Dy2, c.Dy3, c.Dy4, c.Dy5 = 0.75, 0.75, 0.75, 0.75, 0.75
	c.Dz1, c.Dz2, c.Dz3, c.Dz4, c.Dz5 = 1.0, 1.0, 1.0, 1.0, 1.0
	c.Dssp = 0.25 * maxf(c.Dx1, maxf(c.Dy1, c.Dz1))
	c.Dt = dt
	c.Con43 = 4.0 / 3.0
	c.Con16 = 1.0 / 6.0
	c.C2iv = 2.5

	c3c4tx3 := c.C3c4 * c.Tx3
	c3c4ty3 := c.C3c4 * c.Ty3
	c3c4tz3 := c.C3c4 * c.Tz3
	c.Xxcon1 = c3c4tx3 * c.Con43 * c.Tx3
	c.Xxcon2 = c3c4tx3 * c.Tx3
	c.Xxcon3 = c3c4tx3 * c.Conz1 * c.Tx3
	c.Xxcon4 = c3c4tx3 * c.Con16 * c.Tx3
	c.Xxcon5 = c3c4tx3 * c.C1c5 * c.Tx3
	c.Yycon1 = c3c4ty3 * c.Con43 * c.Ty3
	c.Yycon2 = c3c4ty3 * c.Ty3
	c.Yycon3 = c3c4ty3 * c.Conz1 * c.Ty3
	c.Yycon4 = c3c4ty3 * c.Con16 * c.Ty3
	c.Yycon5 = c3c4ty3 * c.C1c5 * c.Ty3
	c.Zzcon1 = c3c4tz3 * c.Con43 * c.Tz3
	c.Zzcon2 = c3c4tz3 * c.Tz3
	c.Zzcon3 = c3c4tz3 * c.Conz1 * c.Tz3
	c.Zzcon4 = c3c4tz3 * c.Con16 * c.Tz3
	c.Zzcon5 = c3c4tz3 * c.C1c5 * c.Tz3

	c.Dx1tx1 = c.Dx1 * c.Tx1
	c.Dx2tx1 = c.Dx2 * c.Tx1
	c.Dx3tx1 = c.Dx3 * c.Tx1
	c.Dx4tx1 = c.Dx4 * c.Tx1
	c.Dx5tx1 = c.Dx5 * c.Tx1
	c.Dy1ty1 = c.Dy1 * c.Ty1
	c.Dy2ty1 = c.Dy2 * c.Ty1
	c.Dy3ty1 = c.Dy3 * c.Ty1
	c.Dy4ty1 = c.Dy4 * c.Ty1
	c.Dy5ty1 = c.Dy5 * c.Ty1
	c.Dz1tz1 = c.Dz1 * c.Tz1
	c.Dz2tz1 = c.Dz2 * c.Tz1
	c.Dz3tz1 = c.Dz3 * c.Tz1
	c.Dz4tz1 = c.Dz4 * c.Tz1
	c.Dz5tz1 = c.Dz5 * c.Tz1
	return c
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ExactSolution evaluates the manufactured solution at (xi, eta, zeta)
// into dtemp, as the Fortran exact_solution.
func ExactSolution(xi, eta, zeta float64, dtemp *[5]float64) {
	for m := 0; m < 5; m++ {
		dtemp[m] = ce[m][0] +
			xi*(ce[m][1]+xi*(ce[m][4]+xi*(ce[m][7]+xi*ce[m][10]))) +
			eta*(ce[m][2]+eta*(ce[m][5]+eta*(ce[m][8]+eta*ce[m][11]))) +
			zeta*(ce[m][3]+zeta*(ce[m][6]+zeta*(ce[m][9]+zeta*ce[m][12])))
	}
}
