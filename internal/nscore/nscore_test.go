package nscore

import (
	"math"
	"testing"

	"npbgo/internal/team"
)

func TestSetConstantsDerived(t *testing.T) {
	c := SetConstants(12, 0.01)
	if c.Dnxm1 != 1.0/11.0 {
		t.Fatalf("Dnxm1 = %v", c.Dnxm1)
	}
	if c.Tx2 != 11.0/2.0 {
		t.Fatalf("Tx2 = %v", c.Tx2)
	}
	if c.Dssp != 0.25 {
		t.Fatalf("Dssp = %v (dz1 = 1.0 dominates)", c.Dssp)
	}
	if math.Abs(c.C1345-1.4*1.4*0.1*1.0) > 1e-15 {
		t.Fatalf("C1345 = %v", c.C1345)
	}
	if c.Xxcon1 != c.C3c4*c.Tx3*c.Con43*c.Tx3 {
		t.Fatalf("Xxcon1 inconsistent")
	}
}

func TestFieldOffsets(t *testing.T) {
	f := NewField(5, true)
	if f.UAt(0, 0, 0, 0) != 0 || f.UAt(4, 4, 4, 4) != len(f.U)-1 {
		t.Fatalf("UAt extremes wrong: %d %d", f.UAt(0, 0, 0, 0), f.UAt(4, 4, 4, 4))
	}
	if f.UAt(1, 0, 0, 0)-f.UAt(0, 0, 0, 0) != 1 {
		t.Fatal("component index not fastest")
	}
	if f.SAt(4, 4, 4) != len(f.Us)-1 {
		t.Fatal("SAt extreme wrong")
	}
	if f.Speed == nil {
		t.Fatal("Speed not allocated with withSpeed")
	}
	if NewField(5, false).Speed != nil {
		t.Fatal("Speed allocated without withSpeed")
	}
}

func TestComputeRHSFillsSpeed(t *testing.T) {
	c := SetConstants(8, 0.01)
	f := NewField(8, true)
	tm := team.New(1)
	defer tm.Close()
	f.Initialize(&c)
	f.ExactRHS(&c)
	f.ComputeRHS(&c, tm)
	for i, v := range f.Speed {
		if !(v > 0) || math.IsNaN(v) {
			t.Fatalf("speed[%d] = %v not positive", i, v)
		}
	}
}

func TestErrorNormZeroForExactField(t *testing.T) {
	c := SetConstants(8, 0.01)
	f := NewField(8, false)
	var ue [5]float64
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				ExactSolution(float64(i)*c.Dnxm1, float64(j)*c.Dnym1, float64(k)*c.Dnzm1, &ue)
				off := f.UAt(0, i, j, k)
				for m := 0; m < 5; m++ {
					f.U[off+m] = ue[m]
				}
			}
		}
	}
	for m, v := range f.ErrorNorm(&c) {
		if v != 0 {
			t.Fatalf("error norm %d = %v for exact field", m, v)
		}
	}
}

func TestFluxJacobianConsistentWithFlux(t *testing.T) {
	// The flux Jacobian must satisfy F(u)*u = flux-ish homogeneity
	// properties; here we check it numerically: dF/du via finite
	// differences of the Euler flux in direction cv matches fjac.
	c := SetConstants(12, 0.01)
	state := [5]float64{1.3, 0.4, -0.2, 0.25, 2.9}
	flux := func(u [5]float64, cv int) [5]float64 {
		rho := u[0]
		vel := u[cv] / rho
		q := 0.5 * (u[1]*u[1] + u[2]*u[2] + u[3]*u[3]) / rho
		p := c.C2 * (u[4] - q)
		var f [5]float64
		f[0] = u[cv]
		for r := 1; r <= 3; r++ {
			f[r] = u[r] * vel
			if r == cv {
				f[r] += p
			}
		}
		f[4] = (c.C1*u[4] - c.C2*q) * vel
		return f
	}
	fjac := make([]float64, 25)
	njac := make([]float64, 25)
	for cv := 1; cv <= 3; cv++ {
		rhoI := 1.0 / state[0]
		sq := 0.5 * (state[1]*state[1] + state[2]*state[2] + state[3]*state[3]) * rhoI
		qs := sq * rhoI
		FluxViscJacobians(&c, &state, rhoI, qs, sq, cv, fjac, njac)
		const h = 1e-7
		for col := 0; col < 5; col++ {
			up := state
			um := state
			up[col] += h
			um[col] -= h
			fp := flux(up, cv)
			fm := flux(um, cv)
			for row := 0; row < 5; row++ {
				want := (fp[row] - fm[row]) / (2 * h)
				got := fjac[row+5*col]
				if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
					t.Fatalf("cv=%d dF[%d]/du[%d]: analytic %v vs numeric %v", cv, row, col, got, want)
				}
			}
		}
	}
}

func TestViscousJacobianAnnihilatesUniformFlow(t *testing.T) {
	// Viscous terms vanish for uniform flow: N(u)*u must reproduce the
	// known contraction (the viscous flux is linear in the primitive
	// gradients; N itself encodes d(viscous flux)/du at zero gradient,
	// whose action on u yields zero for rows 1-3 momenta combination).
	c := SetConstants(12, 0.01)
	state := [5]float64{1.1, 0.3, 0.2, -0.4, 2.5}
	fjac := make([]float64, 25)
	njac := make([]float64, 25)
	rhoI := 1.0 / state[0]
	sq := 0.5 * (state[1]*state[1] + state[2]*state[2] + state[3]*state[3]) * rhoI
	qs := sq * rhoI
	FluxViscJacobians(&c, &state, rhoI, qs, sq, 1, fjac, njac)
	// Row 1 (continuity) of N is identically zero.
	for col := 0; col < 5; col++ {
		if njac[0+5*col] != 0 {
			t.Fatalf("continuity row of njac nonzero at col %d", col)
		}
	}
	// Momentum rows: N(r,0)*rho + N(r,r)*u_r = 0 (derivative of
	// coef*velocity w.r.t. conserved vars contracted with the state).
	for r := 1; r <= 3; r++ {
		v := njac[r+5*0]*state[0] + njac[r+5*r]*state[r]
		if math.Abs(v) > 1e-14 {
			t.Fatalf("momentum row %d: N*u = %v, want 0", r, v)
		}
	}
}
