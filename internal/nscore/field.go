// Package nscore holds the parts of the Navier-Stokes pseudo-
// applications that BT, SP and LU share in the Fortran sources (the
// common "header" of set_constants, exact_solution, initialize,
// exact_rhs and compute_rhs): the manufactured exact solution and its
// coefficient table, the derived constants, the field storage, the
// right-hand-side evaluation and the error/residual norms.
package nscore

import (
	"math"

	"npbgo/internal/grid"
	"npbgo/internal/team"
)

// Field owns the flow state of one benchmark instance on an n^3 grid.
// The 5-vector fields store component m fastest, exactly like the
// Fortran u(m,i,j,k) arrays; scalar fields are plain i-fastest cubes.
type Field struct {
	N int

	U, Rhs, Forcing []float64

	Us, Vs, Ws, Qs, Square, RhoI []float64

	// Speed is the local sound speed, allocated only for SP (nil
	// otherwise); ComputeRHS fills it when present.
	Speed []float64

	// Steady-state machinery: the region bodies below are built once by
	// NewField and reused on every ComputeRHS/Add call (a closure
	// literal at the call site would allocate per invocation), keeping
	// the timed loops of BT and SP free of heap allocation (enforced by
	// internal/allocgate). stC/stTm stage the current call's operands.
	stC  *Consts
	stTm *team.Team

	primBody  func(id int)
	forceBody func(id int)
	xiBody    func(id int)
	etaBody   func(id int)
	zetaBody  func(id int)
	zDissBody func(id int)
	scaleBody func(id int)
	addBody   func(id int)
}

// NewField allocates a zeroed field for an n^3 grid. withSpeed also
// allocates the sound-speed array (needed by SP's diagonalized solver).
func NewField(n int, withSpeed bool) *Field {
	n3 := n * n * n
	f := &Field{
		N:       n,
		U:       make([]float64, 5*n3),
		Rhs:     make([]float64, 5*n3),
		Forcing: make([]float64, 5*n3),
		Us:      make([]float64, n3),
		Vs:      make([]float64, n3),
		Ws:      make([]float64, n3),
		Qs:      make([]float64, n3),
		Square:  make([]float64, n3),
		RhoI:    make([]float64, n3),
	}
	if withSpeed {
		f.Speed = make([]float64, n3)
	}
	f.buildBodies()
	return f
}

// UAt returns the flat offset of U(m,i,j,k) (m fastest).
func (f *Field) UAt(m, i, j, k int) int {
	return grid.Dim4{N1: 5, N2: f.N, N3: f.N, N4: f.N}.At(m, i, j, k)
}

// FAt is UAt for the Rhs/Forcing fields (identical layout).
func (f *Field) FAt(m, i, j, k int) int { return f.UAt(m, i, j, k) }

// SAt returns the flat offset of a scalar field element (i,j,k).
func (f *Field) SAt(i, j, k int) int {
	return grid.Dim3{N1: f.N, N2: f.N, N3: f.N}.At(i, j, k)
}

// Add applies the update u += rhs on the interior (the last step of
// each ADI iteration).
func (f *Field) Add(tm *team.Team) {
	f.stTm = tm
	tm.Run(f.addBody)
}

// ErrorNorm computes the RMS difference between U and the exact
// solution over the whole grid, per component (the Fortran error_norm).
func (f *Field) ErrorNorm(c *Consts) [5]float64 {
	n := f.N
	var rms [5]float64
	var ue [5]float64
	for k := 0; k < n; k++ {
		zeta := float64(k) * c.Dnzm1
		for j := 0; j < n; j++ {
			eta := float64(j) * c.Dnym1
			for i := 0; i < n; i++ {
				xi := float64(i) * c.Dnxm1
				ExactSolution(xi, eta, zeta, &ue)
				off := f.UAt(0, i, j, k)
				for m := 0; m < 5; m++ {
					add := f.U[off+m] - ue[m]
					rms[m] += add * add
				}
			}
		}
	}
	den := float64(n-2) * float64(n-2) * float64(n-2)
	for m := 0; m < 5; m++ {
		rms[m] = math.Sqrt(rms[m] / den)
	}
	return rms
}

// RHSNorm computes the RMS of the Rhs interior, per component.
func (f *Field) RHSNorm() [5]float64 {
	n := f.N
	var rms [5]float64
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				off := f.FAt(0, i, j, k)
				for m := 0; m < 5; m++ {
					rms[m] += f.Rhs[off+m] * f.Rhs[off+m]
				}
			}
		}
	}
	den := float64(n-2) * float64(n-2) * float64(n-2)
	for m := 0; m < 5; m++ {
		rms[m] = math.Sqrt(rms[m] / den)
	}
	return rms
}
