package nscore

// Initialize sets the initial field: transfinite interpolation of the
// exact solution's boundary faces in the interior, and the exact
// solution itself on all six boundary faces, as the Fortran initialize.
func (f *Field) Initialize(c *Consts) {
	n := f.N
	var pface [2][3][5]float64
	var temp [5]float64

	// Fill everything with 1.0 first so the reciprocal computed in
	// compute_rhs is well-defined even at untouched corners.
	for i := range f.U {
		f.U[i] = 1.0
	}

	for k := 0; k < n; k++ {
		zeta := float64(k) * c.Dnzm1
		for j := 0; j < n; j++ {
			eta := float64(j) * c.Dnym1
			for i := 0; i < n; i++ {
				xi := float64(i) * c.Dnxm1
				for ix := 0; ix < 2; ix++ {
					ExactSolution(float64(ix), eta, zeta, &pface[ix][0])
				}
				for iy := 0; iy < 2; iy++ {
					ExactSolution(xi, float64(iy), zeta, &pface[iy][1])
				}
				for iz := 0; iz < 2; iz++ {
					ExactSolution(xi, eta, float64(iz), &pface[iz][2])
				}
				off := f.UAt(0, i, j, k)
				for m := 0; m < 5; m++ {
					pxi := xi*pface[1][0][m] + (1.0-xi)*pface[0][0][m]
					peta := eta*pface[1][1][m] + (1.0-eta)*pface[0][1][m]
					pzeta := zeta*pface[1][2][m] + (1.0-zeta)*pface[0][2][m]
					f.U[off+m] = pxi + peta + pzeta -
						pxi*peta - pxi*pzeta - peta*pzeta +
						pxi*peta*pzeta
				}
			}
		}
	}

	// Exact solution on the six faces.
	setFace := func(i, j, k int, xi, eta, zeta float64) {
		ExactSolution(xi, eta, zeta, &temp)
		off := f.UAt(0, i, j, k)
		for m := 0; m < 5; m++ {
			f.U[off+m] = temp[m]
		}
	}
	for k := 0; k < n; k++ {
		zeta := float64(k) * c.Dnzm1
		for j := 0; j < n; j++ {
			eta := float64(j) * c.Dnym1
			setFace(0, j, k, 0.0, eta, zeta)
			setFace(n-1, j, k, 1.0, eta, zeta)
		}
	}
	for k := 0; k < n; k++ {
		zeta := float64(k) * c.Dnzm1
		for i := 0; i < n; i++ {
			xi := float64(i) * c.Dnxm1
			setFace(i, 0, k, xi, 0.0, zeta)
			setFace(i, n-1, k, xi, 1.0, zeta)
		}
	}
	for j := 0; j < n; j++ {
		eta := float64(j) * c.Dnym1
		for i := 0; i < n; i++ {
			xi := float64(i) * c.Dnxm1
			setFace(i, j, 0, xi, eta, 0.0)
			setFace(i, j, n-1, xi, eta, 1.0)
		}
	}
}

// ExactRHS computes the steady forcing term: the negated right-hand-side
// operator applied to the exact solution, evaluated once during setup
// (the Fortran exact_rhs).
func (f *Field) ExactRHS(c *Consts) {
	n := f.N
	var dtemp [5]float64

	for i := range f.Forcing {
		f.Forcing[i] = 0
	}

	ue := make([]float64, 5*n)  // exact conserved variables along a line
	buf := make([]float64, 5*n) // primitives: buf(0)=|vel|^2, buf(1..4)=u,v,w,p-ish
	cuf := make([]float64, n)
	q := make([]float64, n)
	ueAt := func(i, m int) int { return m + 5*i }

	// xi-direction flux differences.
	for k := 1; k < n-1; k++ {
		zeta := float64(k) * c.Dnzm1
		for j := 1; j < n-1; j++ {
			eta := float64(j) * c.Dnym1
			for i := 0; i < n; i++ {
				xi := float64(i) * c.Dnxm1
				ExactSolution(xi, eta, zeta, &dtemp)
				for m := 0; m < 5; m++ {
					ue[ueAt(i, m)] = dtemp[m]
				}
				dtpp := 1.0 / dtemp[0]
				for m := 1; m < 5; m++ {
					buf[ueAt(i, m)] = dtpp * dtemp[m]
				}
				cuf[i] = buf[ueAt(i, 1)] * buf[ueAt(i, 1)]
				buf[ueAt(i, 0)] = cuf[i] + buf[ueAt(i, 2)]*buf[ueAt(i, 2)] + buf[ueAt(i, 3)]*buf[ueAt(i, 3)]
				q[i] = 0.5 * (buf[ueAt(i, 1)]*ue[ueAt(i, 1)] + buf[ueAt(i, 2)]*ue[ueAt(i, 2)] +
					buf[ueAt(i, 3)]*ue[ueAt(i, 3)])
			}
			for i := 1; i < n-1; i++ {
				im1, ip1 := i-1, i+1
				fo := f.FAt(0, i, j, k)
				f.Forcing[fo+0] -= c.Tx2*(ue[ueAt(ip1, 1)]-ue[ueAt(im1, 1)]) -
					c.Dx1tx1*(ue[ueAt(ip1, 0)]-2.0*ue[ueAt(i, 0)]+ue[ueAt(im1, 0)])
				f.Forcing[fo+1] += -c.Tx2*((ue[ueAt(ip1, 1)]*buf[ueAt(ip1, 1)]+c.C2*(ue[ueAt(ip1, 4)]-q[ip1]))-
					(ue[ueAt(im1, 1)]*buf[ueAt(im1, 1)]+c.C2*(ue[ueAt(im1, 4)]-q[im1]))) +
					c.Xxcon1*(buf[ueAt(ip1, 1)]-2.0*buf[ueAt(i, 1)]+buf[ueAt(im1, 1)]) +
					c.Dx2tx1*(ue[ueAt(ip1, 1)]-2.0*ue[ueAt(i, 1)]+ue[ueAt(im1, 1)])
				f.Forcing[fo+2] += -c.Tx2*(ue[ueAt(ip1, 2)]*buf[ueAt(ip1, 1)]-ue[ueAt(im1, 2)]*buf[ueAt(im1, 1)]) +
					c.Xxcon2*(buf[ueAt(ip1, 2)]-2.0*buf[ueAt(i, 2)]+buf[ueAt(im1, 2)]) +
					c.Dx3tx1*(ue[ueAt(ip1, 2)]-2.0*ue[ueAt(i, 2)]+ue[ueAt(im1, 2)])
				f.Forcing[fo+3] += -c.Tx2*(ue[ueAt(ip1, 3)]*buf[ueAt(ip1, 1)]-ue[ueAt(im1, 3)]*buf[ueAt(im1, 1)]) +
					c.Xxcon2*(buf[ueAt(ip1, 3)]-2.0*buf[ueAt(i, 3)]+buf[ueAt(im1, 3)]) +
					c.Dx4tx1*(ue[ueAt(ip1, 3)]-2.0*ue[ueAt(i, 3)]+ue[ueAt(im1, 3)])
				f.Forcing[fo+4] += -c.Tx2*(buf[ueAt(ip1, 1)]*(c.C1*ue[ueAt(ip1, 4)]-c.C2*q[ip1])-
					buf[ueAt(im1, 1)]*(c.C1*ue[ueAt(im1, 4)]-c.C2*q[im1])) +
					0.5*c.Xxcon3*(buf[ueAt(ip1, 0)]-2.0*buf[ueAt(i, 0)]+buf[ueAt(im1, 0)]) +
					c.Xxcon4*(cuf[ip1]-2.0*cuf[i]+cuf[im1]) +
					c.Xxcon5*(buf[ueAt(ip1, 4)]-2.0*buf[ueAt(i, 4)]+buf[ueAt(im1, 4)]) +
					c.Dx5tx1*(ue[ueAt(ip1, 4)]-2.0*ue[ueAt(i, 4)]+ue[ueAt(im1, 4)])
			}
			f.dissipLine(c, j, k, ue, 0)
		}
	}

	// eta-direction flux differences.
	for k := 1; k < n-1; k++ {
		zeta := float64(k) * c.Dnzm1
		for i := 1; i < n-1; i++ {
			xi := float64(i) * c.Dnxm1
			for j := 0; j < n; j++ {
				eta := float64(j) * c.Dnym1
				ExactSolution(xi, eta, zeta, &dtemp)
				for m := 0; m < 5; m++ {
					ue[ueAt(j, m)] = dtemp[m]
				}
				dtpp := 1.0 / dtemp[0]
				for m := 1; m < 5; m++ {
					buf[ueAt(j, m)] = dtpp * dtemp[m]
				}
				cuf[j] = buf[ueAt(j, 2)] * buf[ueAt(j, 2)]
				buf[ueAt(j, 0)] = cuf[j] + buf[ueAt(j, 1)]*buf[ueAt(j, 1)] + buf[ueAt(j, 3)]*buf[ueAt(j, 3)]
				q[j] = 0.5 * (buf[ueAt(j, 1)]*ue[ueAt(j, 1)] + buf[ueAt(j, 2)]*ue[ueAt(j, 2)] +
					buf[ueAt(j, 3)]*ue[ueAt(j, 3)])
			}
			for j := 1; j < n-1; j++ {
				jm1, jp1 := j-1, j+1
				fo := f.FAt(0, i, j, k)
				f.Forcing[fo+0] -= c.Ty2*(ue[ueAt(jp1, 2)]-ue[ueAt(jm1, 2)]) -
					c.Dy1ty1*(ue[ueAt(jp1, 0)]-2.0*ue[ueAt(j, 0)]+ue[ueAt(jm1, 0)])
				f.Forcing[fo+1] += -c.Ty2*(ue[ueAt(jp1, 1)]*buf[ueAt(jp1, 2)]-ue[ueAt(jm1, 1)]*buf[ueAt(jm1, 2)]) +
					c.Yycon2*(buf[ueAt(jp1, 1)]-2.0*buf[ueAt(j, 1)]+buf[ueAt(jm1, 1)]) +
					c.Dy2ty1*(ue[ueAt(jp1, 1)]-2.0*ue[ueAt(j, 1)]+ue[ueAt(jm1, 1)])
				f.Forcing[fo+2] += -c.Ty2*((ue[ueAt(jp1, 2)]*buf[ueAt(jp1, 2)]+c.C2*(ue[ueAt(jp1, 4)]-q[jp1]))-
					(ue[ueAt(jm1, 2)]*buf[ueAt(jm1, 2)]+c.C2*(ue[ueAt(jm1, 4)]-q[jm1]))) +
					c.Yycon1*(buf[ueAt(jp1, 2)]-2.0*buf[ueAt(j, 2)]+buf[ueAt(jm1, 2)]) +
					c.Dy3ty1*(ue[ueAt(jp1, 2)]-2.0*ue[ueAt(j, 2)]+ue[ueAt(jm1, 2)])
				f.Forcing[fo+3] += -c.Ty2*(ue[ueAt(jp1, 3)]*buf[ueAt(jp1, 2)]-ue[ueAt(jm1, 3)]*buf[ueAt(jm1, 2)]) +
					c.Yycon2*(buf[ueAt(jp1, 3)]-2.0*buf[ueAt(j, 3)]+buf[ueAt(jm1, 3)]) +
					c.Dy4ty1*(ue[ueAt(jp1, 3)]-2.0*ue[ueAt(j, 3)]+ue[ueAt(jm1, 3)])
				f.Forcing[fo+4] += -c.Ty2*(buf[ueAt(jp1, 2)]*(c.C1*ue[ueAt(jp1, 4)]-c.C2*q[jp1])-
					buf[ueAt(jm1, 2)]*(c.C1*ue[ueAt(jm1, 4)]-c.C2*q[jm1])) +
					0.5*c.Yycon3*(buf[ueAt(jp1, 0)]-2.0*buf[ueAt(j, 0)]+buf[ueAt(jm1, 0)]) +
					c.Yycon4*(cuf[jp1]-2.0*cuf[j]+cuf[jm1]) +
					c.Yycon5*(buf[ueAt(jp1, 4)]-2.0*buf[ueAt(j, 4)]+buf[ueAt(jm1, 4)]) +
					c.Dy5ty1*(ue[ueAt(jp1, 4)]-2.0*ue[ueAt(j, 4)]+ue[ueAt(jm1, 4)])
			}
			f.dissipLine(c, i, k, ue, 1)
		}
	}

	// zeta-direction flux differences.
	for j := 1; j < n-1; j++ {
		eta := float64(j) * c.Dnym1
		for i := 1; i < n-1; i++ {
			xi := float64(i) * c.Dnxm1
			for k := 0; k < n; k++ {
				zeta := float64(k) * c.Dnzm1
				ExactSolution(xi, eta, zeta, &dtemp)
				for m := 0; m < 5; m++ {
					ue[ueAt(k, m)] = dtemp[m]
				}
				dtpp := 1.0 / dtemp[0]
				for m := 1; m < 5; m++ {
					buf[ueAt(k, m)] = dtpp * dtemp[m]
				}
				cuf[k] = buf[ueAt(k, 3)] * buf[ueAt(k, 3)]
				buf[ueAt(k, 0)] = cuf[k] + buf[ueAt(k, 1)]*buf[ueAt(k, 1)] + buf[ueAt(k, 2)]*buf[ueAt(k, 2)]
				q[k] = 0.5 * (buf[ueAt(k, 1)]*ue[ueAt(k, 1)] + buf[ueAt(k, 2)]*ue[ueAt(k, 2)] +
					buf[ueAt(k, 3)]*ue[ueAt(k, 3)])
			}
			for k := 1; k < n-1; k++ {
				km1, kp1 := k-1, k+1
				fo := f.FAt(0, i, j, k)
				f.Forcing[fo+0] -= c.Tz2*(ue[ueAt(kp1, 3)]-ue[ueAt(km1, 3)]) -
					c.Dz1tz1*(ue[ueAt(kp1, 0)]-2.0*ue[ueAt(k, 0)]+ue[ueAt(km1, 0)])
				f.Forcing[fo+1] += -c.Tz2*(ue[ueAt(kp1, 1)]*buf[ueAt(kp1, 3)]-ue[ueAt(km1, 1)]*buf[ueAt(km1, 3)]) +
					c.Zzcon2*(buf[ueAt(kp1, 1)]-2.0*buf[ueAt(k, 1)]+buf[ueAt(km1, 1)]) +
					c.Dz2tz1*(ue[ueAt(kp1, 1)]-2.0*ue[ueAt(k, 1)]+ue[ueAt(km1, 1)])
				f.Forcing[fo+2] += -c.Tz2*(ue[ueAt(kp1, 2)]*buf[ueAt(kp1, 3)]-ue[ueAt(km1, 2)]*buf[ueAt(km1, 3)]) +
					c.Zzcon2*(buf[ueAt(kp1, 2)]-2.0*buf[ueAt(k, 2)]+buf[ueAt(km1, 2)]) +
					c.Dz3tz1*(ue[ueAt(kp1, 2)]-2.0*ue[ueAt(k, 2)]+ue[ueAt(km1, 2)])
				f.Forcing[fo+3] += -c.Tz2*((ue[ueAt(kp1, 3)]*buf[ueAt(kp1, 3)]+c.C2*(ue[ueAt(kp1, 4)]-q[kp1]))-
					(ue[ueAt(km1, 3)]*buf[ueAt(km1, 3)]+c.C2*(ue[ueAt(km1, 4)]-q[km1]))) +
					c.Zzcon1*(buf[ueAt(kp1, 3)]-2.0*buf[ueAt(k, 3)]+buf[ueAt(km1, 3)]) +
					c.Dz4tz1*(ue[ueAt(kp1, 3)]-2.0*ue[ueAt(k, 3)]+ue[ueAt(km1, 3)])
				f.Forcing[fo+4] += -c.Tz2*(buf[ueAt(kp1, 3)]*(c.C1*ue[ueAt(kp1, 4)]-c.C2*q[kp1])-
					buf[ueAt(km1, 3)]*(c.C1*ue[ueAt(km1, 4)]-c.C2*q[km1])) +
					0.5*c.Zzcon3*(buf[ueAt(kp1, 0)]-2.0*buf[ueAt(k, 0)]+buf[ueAt(km1, 0)]) +
					c.Zzcon4*(cuf[kp1]-2.0*cuf[k]+cuf[km1]) +
					c.Zzcon5*(buf[ueAt(kp1, 4)]-2.0*buf[ueAt(k, 4)]+buf[ueAt(km1, 4)]) +
					c.Dz5tz1*(ue[ueAt(kp1, 4)]-2.0*ue[ueAt(k, 4)]+ue[ueAt(km1, 4)])
			}
			f.dissipLine(c, i, j, ue, 2)
		}
	}

	// Finally negate: the forcing balances the operator exactly.
	for idx := range f.Forcing {
		f.Forcing[idx] = -f.Forcing[idx]
	}
}

// dissipLine subtracts the boundary-adjusted fourth-difference
// dissipation of the exact-solution line ue from the forcing along
// direction dir (0 = xi with fixed (j,k) = (a,b), 1 = eta with fixed
// (i,k) = (a,b), 2 = zeta with fixed (i,j) = (a,b)).
func (f *Field) dissipLine(c *Consts, a, bb int, ue []float64, dir int) {
	n := f.N
	Dssp := c.Dssp
	at := func(l, m int) float64 { return ue[m+5*l] }
	fAt := func(l, m int) int {
		switch dir {
		case 0:
			return f.FAt(m, l, a, bb)
		case 1:
			return f.FAt(m, a, l, bb)
		default:
			return f.FAt(m, a, bb, l)
		}
	}
	for m := 0; m < 5; m++ {
		l := 1
		f.Forcing[fAt(l, m)] -= Dssp * (5.0*at(l, m) - 4.0*at(l+1, m) + at(l+2, m))
		l = 2
		f.Forcing[fAt(l, m)] -= Dssp * (-4.0*at(l-1, m) + 6.0*at(l, m) - 4.0*at(l+1, m) + at(l+2, m))
		for l = 3; l <= n-4; l++ {
			f.Forcing[fAt(l, m)] -= Dssp * (at(l-2, m) - 4.0*at(l-1, m) + 6.0*at(l, m) - 4.0*at(l+1, m) + at(l+2, m))
		}
		l = n - 3
		f.Forcing[fAt(l, m)] -= Dssp * (at(l-2, m) - 4.0*at(l-1, m) + 6.0*at(l, m) - 4.0*at(l+1, m))
		l = n - 2
		f.Forcing[fAt(l, m)] -= Dssp * (at(l-2, m) - 4.0*at(l-1, m) + 5.0*at(l, m))
	}
}
