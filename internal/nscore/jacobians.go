package nscore

// FluxViscJacobians fills the 5x5 flux Jacobian fjac and viscous
// Jacobian njac (column-major, element (m,n) at m+5*n) for one grid
// point in the coordinate direction whose convective velocity is
// conserved component cv (1 = u, 2 = v, 3 = w). The same two matrices
// drive BT's block-tridiagonal assembly (x_solve/y_solve/z_solve) and
// LU's jacld/jacu lower/upper blocks — the Fortran writes them out by
// hand in each of those six routines.
//
// uvec holds the five conserved variables at the point; rhoI, qs and sq
// are the precomputed 1/rho, q/rho and dynamic-pressure-like 0.5*|m|^2 /
// rho scalars.
func FluxViscJacobians(c *Consts, uvec *[5]float64, rhoI, qs, sq float64, cv int, fjac, njac []float64) {
	uv := [4]float64{0, uvec[1], uvec[2], uvec[3]}
	u5 := uvec[4]
	t1 := rhoI
	t2 := t1 * t1
	t3 := t1 * t2

	for e := 0; e < 25; e++ {
		fjac[e] = 0
		njac[e] = 0
	}
	at := func(m, n int) int { return m + 5*n }

	// Continuity row.
	fjac[at(0, cv)] = 1.0
	// Momentum rows.
	for r := 1; r <= 3; r++ {
		if r == cv {
			fjac[at(r, 0)] = -(uv[cv]*uv[cv])*t2 + c.C2*qs
			for s := 1; s <= 3; s++ {
				if s == cv {
					fjac[at(r, s)] = (2.0 - c.C2) * uv[cv] * t1
				} else {
					fjac[at(r, s)] = -c.C2 * uv[s] * t1
				}
			}
			fjac[at(r, 4)] = c.C2
		} else {
			fjac[at(r, 0)] = -(uv[r] * uv[cv]) * t2
			fjac[at(r, r)] = uv[cv] * t1
			fjac[at(r, cv)] = uv[r] * t1
		}
	}
	// Energy row.
	fjac[at(4, 0)] = (c.C2*2.0*sq - c.C1*u5) * uv[cv] * t2
	for s := 1; s <= 3; s++ {
		if s == cv {
			fjac[at(4, s)] = c.C1*u5*t1 - c.C2*(qs+uv[cv]*uv[cv]*t2)
		} else {
			fjac[at(4, s)] = -c.C2 * (uv[s] * uv[cv]) * t2
		}
	}
	fjac[at(4, 4)] = c.C1 * uv[cv] * t1

	// Viscous Jacobian.
	coef := [4]float64{0, c.C3c4, c.C3c4, c.C3c4}
	coef[cv] = c.Con43 * c.C3c4
	for r := 1; r <= 3; r++ {
		njac[at(r, 0)] = -coef[r] * t2 * uv[r]
		njac[at(r, r)] = coef[r] * t1
	}
	sum := 0.0
	for r := 1; r <= 3; r++ {
		sum += (coef[r] - c.C1345) * t3 * uv[r] * uv[r]
		njac[at(4, r)] = (coef[r] - c.C1345) * t2 * uv[r]
	}
	njac[at(4, 0)] = -sum - c.C1345*t2*u5
	njac[at(4, 4)] = c.C1345 * t1
}
