package npbgo_test

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"npbgo"
)

func TestEveryBenchmarkClassSVerifies(t *testing.T) {
	for _, b := range npbgo.Benchmarks() {
		b := b
		t.Run(string(b), func(t *testing.T) {
			res, err := npbgo.Run(npbgo.Config{Benchmark: b, Class: 'S', Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("verification failed:\n%s", res.Detail)
			}
			if !res.Verified {
				t.Fatalf("expected official verification for %s.S, got tier %s", b, res.Tier)
			}
			if res.Tier != "official" {
				t.Fatalf("tier = %s, want official", res.Tier)
			}
			if res.Elapsed <= 0 || res.Mops <= 0 {
				t.Fatalf("degenerate timing: %v, %v Mop/s", res.Elapsed, res.Mops)
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.EP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != 'S' || res.Threads != 1 {
		t.Fatalf("defaults not applied: class %c threads %d", res.Class, res.Threads)
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	if _, err := npbgo.Run(npbgo.Config{Benchmark: "QQ"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBadClassPropagates(t *testing.T) {
	if _, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.CG, Class: 'Q'}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestResultString(t *testing.T) {
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.MG, Class: 'S'})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "MG.S") || !strings.Contains(s, "VERIFIED") {
		t.Fatalf("String() = %q", s)
	}
}

func TestWarmupOption(t *testing.T) {
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 2, Warmup: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("warmup run unverified:\n%s", res.Detail)
	}
}

// TestScheduleOptionEquivalence: every loop schedule must produce the
// exact same verification printout as the static default — the computed
// values are printed at full float64 precision, so an identical Detail
// string is a bit-identity check on the benchmark's numerical results.
// CG exercises the block-indexed reduction path, MG the per-block norm
// maxima.
func TestScheduleOptionEquivalence(t *testing.T) {
	for _, b := range []npbgo.Benchmark{npbgo.CG, npbgo.MG} {
		base, err := npbgo.Run(npbgo.Config{Benchmark: b, Class: 'S', Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !base.Verified {
			t.Fatalf("static %s.S unverified:\n%s", b, base.Detail)
		}
		for _, sched := range []string{"dynamic", "guided", "stealing", "auto"} {
			res, err := npbgo.Run(npbgo.Config{Benchmark: b, Class: 'S', Threads: 3, Schedule: sched})
			if err != nil {
				t.Fatalf("%s schedule %s: %v", b, sched, err)
			}
			if !res.Verified {
				t.Fatalf("%s under %s unverified:\n%s", b, sched, res.Detail)
			}
			if res.Detail != base.Detail {
				t.Fatalf("%s under %s diverged from static:\n%s\nvs static:\n%s",
					b, sched, res.Detail, base.Detail)
			}
		}
	}
}

// TestBadScheduleRejected: an unknown schedule name must fail up front
// as a config error, before any benchmark state is built.
func TestBadScheduleRejected(t *testing.T) {
	_, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Schedule: "round-robin"})
	if err == nil {
		t.Fatal("unknown schedule accepted")
	}
	if !strings.Contains(err.Error(), "schedule") {
		t.Fatalf("error %q does not mention the schedule", err)
	}
}

func TestPoissonSolverReducesResidual(t *testing.T) {
	s, err := npbgo.NewPoissonSolver(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	rhs := make([]float64, n*n*n)
	rhs[0] = 1
	rhs[n*n*n/2] = -1
	_, r1, err := s.Solve(rhs, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, r4, err := s.Solve(rhs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(r4 < r1/20) {
		t.Fatalf("V-cycles not converging: 1 cycle %v, 4 cycles %v", r1, r4)
	}
}

func TestPoissonSolverSolutionSatisfiesEquation(t *testing.T) {
	s, err := npbgo.NewPoissonSolver(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	rhs := make([]float64, n*n*n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i)) // arbitrary; mean removed by Solve
	}
	u, res, err := s.Solve(rhs, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check the returned residual with the independent
	// ResidualOf evaluation on the de-meaned rhs.
	mean := 0.0
	for _, v := range rhs {
		mean += v
	}
	mean /= float64(len(rhs))
	rhs0 := make([]float64, len(rhs))
	for i := range rhs {
		rhs0[i] = rhs[i] - mean
	}
	res2, err := s.ResidualOf(u, rhs0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res-res2) > 1e-10*(1+res) {
		t.Fatalf("residual mismatch: Solve %v vs ResidualOf %v", res, res2)
	}
}

func TestPoissonSolverRejectsBadInput(t *testing.T) {
	if _, err := npbgo.NewPoissonSolver(15, 1); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := npbgo.NewPoissonSolver(32, 0); err == nil {
		t.Fatal("zero threads accepted")
	}
	s, _ := npbgo.NewPoissonSolver(8, 1)
	if _, _, err := s.Solve(make([]float64, 3), 1); err == nil {
		t.Fatal("wrong-size rhs accepted")
	}
}

func TestFFT3DRoundTrip(t *testing.T) {
	const nx, ny, nz = 16, 8, 4
	data := make([]complex128, nx*ny*nz)
	orig := make([]complex128, len(data))
	for i := range data {
		data[i] = complex(float64(i%17)*0.25, float64(i%5)-2)
		orig[i] = data[i]
	}
	if err := npbgo.FFT3D(1, nx, ny, nz, data, 2); err != nil {
		t.Fatal(err)
	}
	if err := npbgo.FFT3D(-1, nx, ny, nz, data, 2); err != nil {
		t.Fatal(err)
	}
	scale := complex(float64(nx*ny*nz), 0)
	for i := range data {
		if cmplx.Abs(data[i]/scale-orig[i]) > 1e-12 {
			t.Fatalf("roundtrip failed at %d: %v vs %v", i, data[i]/scale, orig[i])
		}
	}
}

func TestFFT3DRejectsBadInput(t *testing.T) {
	d := make([]complex128, 8)
	if err := npbgo.FFT3D(0, 2, 2, 2, d, 1); err == nil {
		t.Fatal("dir 0 accepted")
	}
	if err := npbgo.FFT3D(1, 3, 2, 2, d, 1); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if err := npbgo.FFT3D(1, 2, 2, 2, d[:4], 1); err == nil {
		t.Fatal("short data accepted")
	}
	if err := npbgo.FFT3D(1, 2, 2, 2, d, 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestTeamExported(t *testing.T) {
	tm := npbgo.NewTeam(3)
	defer tm.Close()
	sum := tm.ReduceSum(0, 100, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	if sum != 4950 {
		t.Fatalf("ReduceSum = %v", sum)
	}
	lo, hi := npbgo.BlockRange(0, 10, 3, 0)
	if lo != 0 || hi != 4 {
		t.Fatalf("BlockRange = %d,%d", lo, hi)
	}
}
