package npbgo

import (
	"fmt"

	"npbgo/internal/bt"
	"npbgo/internal/cg"
	"npbgo/internal/ep"
	"npbgo/internal/ft"
	"npbgo/internal/is"
	"npbgo/internal/lu"
	"npbgo/internal/mg"
	"npbgo/internal/sp"
)

// FootprintBytes estimates the working-set bytes the configured run
// will allocate, from each benchmark's own model of its dominant arrays
// (grids, matrices, per-thread scratch). The estimate exists so a sweep
// can refuse to launch a cell that cannot fit — the paper hit exactly
// this with FT on its memory-limited machines (§5), where the run died
// instead of being skipped with a reason. Estimates track the dominant
// allocations, not every slice; admission control should apply its own
// headroom on top.
//
// Zero-valued Class and Threads default like RunContext ('S', 1). An
// unknown benchmark or class is an error.
func (c Config) FootprintBytes() (uint64, error) {
	class := c.Class
	if class == 0 {
		class = 'S'
	}
	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	switch c.Benchmark {
	case BT:
		return bt.Footprint(class, threads)
	case SP:
		return sp.Footprint(class, threads)
	case LU:
		return lu.Footprint(class, threads)
	case FT:
		return ft.Footprint(class, threads)
	case MG:
		return mg.Footprint(class, threads)
	case CG:
		return cg.Footprint(class, threads)
	case IS:
		return is.Footprint(class, threads)
	case EP:
		return ep.Footprint(class, threads)
	}
	return 0, fmt.Errorf("npbgo: unknown benchmark %q", c.Benchmark)
}
