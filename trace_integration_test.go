package npbgo_test

import (
	"bytes"
	"testing"

	"npbgo"
	"npbgo/internal/trace"
)

// runTraced runs one class-S cell with the tracer on and returns the
// verified result's snapshot.
func runTraced(t *testing.T, bench npbgo.Benchmark, threads int) *trace.Snapshot {
	t.Helper()
	res, err := npbgo.Run(npbgo.Config{Benchmark: bench, Class: 'S', Threads: threads, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("%s.S failed verification under tracing: tier %s", bench, res.Tier)
	}
	if res.Trace == nil {
		t.Fatalf("%s.S: Config.Trace set but Result.Trace is nil", bench)
	}
	return res.Trace
}

// TestTraceDisabledByDefault: without Config.Trace the result carries
// no snapshot — the disabled path really is off.
func TestTraceDisabledByDefault(t *testing.T) {
	res, err := npbgo.Run(npbgo.Config{Benchmark: "IS", Class: 'S', Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("Result.Trace set without Config.Trace")
	}
}

// TestTracedISExportsValidChrome is the tentpole acceptance check: a
// class-S IS run (the suite's barrier-heavy kernel) with tracing on
// must export Chrome/Perfetto JSON that passes structural validation —
// paired, monotonic, strictly nested spans per worker track — and must
// carry barrier flow events linking arrive to release.
func TestTracedISExportsValidChrome(t *testing.T) {
	s := runTraced(t, "IS", 2)
	var buf bytes.Buffer
	if err := s.WriteChrome(&buf, "IS.S t2"); err != nil {
		t.Fatal(err)
	}
	info, err := trace.Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("IS.S trace fails validation: %v", err)
	}
	if info.FlowStarts < 1 || info.FlowEnds < 1 {
		t.Fatalf("no barrier flow events: %d starts, %d ends", info.FlowStarts, info.FlowEnds)
	}
	names := map[string]bool{}
	workers := 0
	for _, tk := range info.Tracks {
		names[tk.Name] = true
		if tk.Name == "worker 0" || tk.Name == "worker 1" {
			workers++
			if tk.Slices == 0 {
				t.Errorf("track %q recorded no slices", tk.Name)
			}
		}
	}
	if workers != 2 || !names["master"] {
		t.Fatalf("track layout wrong: %v", names)
	}
}

// TestTracedLURecordsPipelineAndPhases: LU's pipelined SSOR sweeps are
// why the tracer exists; its trace must carry pipeline post events on
// the worker tracks and the named phase spans on the master track, and
// still export a valid file.
func TestTracedLURecordsPipelineAndPhases(t *testing.T) {
	s := runTraced(t, "LU", 2)
	posts := 0
	for id := 0; id < s.Workers; id++ {
		for _, e := range s.Tracks[id].Events {
			if e.Kind == trace.KindPipeSignal {
				posts++
			}
		}
	}
	if posts == 0 {
		t.Fatal("no pipeline post events on any worker track")
	}
	phases := map[string]int{}
	master := s.Tracks[s.Workers]
	for _, e := range master.Events {
		if e.Kind == trace.KindPhaseBegin {
			phases[e.Name]++
		}
	}
	for _, want := range []string{"sweeps", "rhs", "scale+update"} {
		if phases[want] == 0 {
			t.Errorf("master track has no %q phase span (saw %v)", want, phases)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteChrome(&buf, "LU.S t2"); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Validate(buf.Bytes()); err != nil {
		t.Fatalf("LU.S trace fails validation: %v", err)
	}
}

// TestTracedSerialRun: the n==1 inline path must produce a coherent,
// exportable timeline too (regions and blocks, no barrier flows).
func TestTracedSerialRun(t *testing.T) {
	s := runTraced(t, "EP", 1)
	if len(s.Tracks[0].Events) == 0 {
		t.Fatal("serial run recorded no worker events")
	}
	var buf bytes.Buffer
	if err := s.WriteChrome(&buf, "EP.S serial"); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Validate(buf.Bytes()); err != nil {
		t.Fatalf("serial trace fails validation: %v", err)
	}
}
