package npbgo_test

import (
	"testing"

	"npbgo"
)

// TestClassWVerifies runs the whole suite at class W against the
// official reference values — a heavier integration pass (tens of
// seconds); skipped under -short.
func TestClassWVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("class W integration run skipped in -short mode")
	}
	// BT/SP/LU at W take minutes on a laptop-class core; the W
	// integration pass covers the kernels, whose W runs are seconds.
	// The pseudo-applications' W/A verification is exercised by
	// cmd/npbsuite and was used to pin their reference values.
	for _, b := range []npbgo.Benchmark{npbgo.FT, npbgo.MG, npbgo.CG, npbgo.IS, npbgo.EP} {
		b := b
		t.Run(string(b), func(t *testing.T) {
			res, err := npbgo.Run(npbgo.Config{Benchmark: b, Class: 'W', Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("verification failed:\n%s", res.Detail)
			}
			if !res.Verified {
				t.Fatalf("expected verification, tier %s", res.Tier)
			}
		})
	}
}

// TestProfileRequested checks the per-phase profile plumbing.
func TestProfileRequested(t *testing.T) {
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.BT, Class: 'S', Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"rhs", "xsolve", "ysolve", "zsolve", "add"} {
		if !contains(res.Profile, phase) {
			t.Fatalf("profile missing phase %q:\n%s", phase, res.Profile)
		}
	}
	// Profile not requested: absent.
	res2, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.BT, Class: 'S'})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Profile != "" {
		t.Fatal("profile present without request")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestBucketsConfig drives IS's bucketed variant through the facade.
func TestBucketsConfig(t *testing.T) {
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.IS, Class: 'S', Threads: 2, Buckets: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("bucketed IS unverified:\n%s", res.Detail)
	}
}

// TestProfileSPLU checks the per-phase plumbing for the other two
// pseudo-applications.
func TestProfileSPLU(t *testing.T) {
	for _, bench := range []npbgo.Benchmark{npbgo.SP, npbgo.LU} {
		res, err := npbgo.Run(npbgo.Config{Benchmark: bench, Class: 'S', Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Profile == "" {
			t.Fatalf("%s: no profile produced", bench)
		}
		if !contains(res.Profile, "rhs") {
			t.Fatalf("%s profile missing rhs phase:\n%s", bench, res.Profile)
		}
	}
}
