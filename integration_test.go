package npbgo_test

import (
	"testing"

	"npbgo"
)

// TestClassWVerifies runs the whole suite at class W against the
// official reference values — a heavier integration pass (tens of
// seconds); skipped under -short.
func TestClassWVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("class W integration run skipped in -short mode")
	}
	// BT/SP/LU at W take minutes on a laptop-class core; the W
	// integration pass covers the kernels, whose W runs are seconds.
	// The pseudo-applications' W/A verification is exercised by
	// cmd/npbsuite and was used to pin their reference values.
	for _, b := range []npbgo.Benchmark{npbgo.FT, npbgo.MG, npbgo.CG, npbgo.IS, npbgo.EP} {
		b := b
		t.Run(string(b), func(t *testing.T) {
			res, err := npbgo.Run(npbgo.Config{Benchmark: b, Class: 'W', Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("verification failed:\n%s", res.Detail)
			}
			if !res.Verified {
				t.Fatalf("expected verification, tier %s", res.Tier)
			}
		})
	}
}

// TestProfileRequested checks the per-phase profile plumbing.
func TestProfileRequested(t *testing.T) {
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.BT, Class: 'S', Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"rhs", "xsolve", "ysolve", "zsolve", "add"} {
		if !contains(res.Profile, phase) {
			t.Fatalf("profile missing phase %q:\n%s", phase, res.Profile)
		}
	}
	// Profile not requested: absent.
	res2, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.BT, Class: 'S'})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Profile != "" {
		t.Fatal("profile present without request")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestBucketsConfig drives IS's bucketed variant through the facade.
func TestBucketsConfig(t *testing.T) {
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.IS, Class: 'S', Threads: 2, Buckets: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("bucketed IS unverified:\n%s", res.Detail)
	}
}

// TestObsRequested checks the runtime-metrics plumbing: Config.Obs
// populates Result.Obs for every benchmark and implies a phase profile
// where the benchmark supports one.
func TestObsRequested(t *testing.T) {
	for _, b := range npbgo.Benchmarks() {
		b := b
		t.Run(string(b), func(t *testing.T) {
			res, err := npbgo.Run(npbgo.Config{Benchmark: b, Class: 'S', Threads: 2, Obs: true})
			if err != nil {
				t.Fatal(err)
			}
			s := res.Obs
			if s == nil {
				t.Fatal("Config.Obs set but Result.Obs is nil")
			}
			if s.Workers != 2 {
				t.Fatalf("recorder sized for %d workers, want 2", s.Workers)
			}
			if s.Regions == 0 {
				t.Fatal("no regions recorded")
			}
			for i, busy := range s.Busy {
				if busy <= 0 {
					t.Fatalf("worker %d recorded no busy time: %v", i, s.Busy)
				}
			}
			if im := s.Imbalance(); im < 1 {
				t.Fatalf("imbalance %v < 1", im)
			}
		})
	}

	// Obs off: no snapshot, no phases.
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.EP, Class: 'S', Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil || res.Phases != nil {
		t.Fatal("obs data present without Config.Obs")
	}
}

// TestObsImpliesPhases checks that Obs turns on the phase profile for
// benchmarks that own a timer set.
func TestObsImpliesPhases(t *testing.T) {
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 2, Obs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) == 0 {
		t.Fatal("Obs should imply phase timers for CG")
	}
	names := map[string]bool{}
	for _, p := range res.Phases {
		names[p.Name] = true
		if p.Seconds < 0 || p.Laps < 1 {
			t.Fatalf("degenerate phase %+v", p)
		}
	}
	if !names["t_conj_grad"] {
		t.Fatalf("missing t_conj_grad phase: %+v", res.Phases)
	}
}

// TestProfileSPLU checks the per-phase plumbing for the other two
// pseudo-applications.
func TestProfileSPLU(t *testing.T) {
	for _, bench := range []npbgo.Benchmark{npbgo.SP, npbgo.LU} {
		res, err := npbgo.Run(npbgo.Config{Benchmark: bench, Class: 'S', Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Profile == "" {
			t.Fatalf("%s: no profile produced", bench)
		}
		if !contains(res.Profile, "rhs") {
			t.Fatalf("%s profile missing rhs phase:\n%s", bench, res.Profile)
		}
	}
}
